// NAND flash array model: the raw media inside the smart SSD.
//
// Models the constraints that make flash management interesting — erase
// before program, page-granular programs, block-granular erases, asymmetric
// latencies, per-die parallelism with per-die serialization, and wear. The
// FTL above this hides all of it behind a logical block interface.
//
// Every page carries an out-of-band (OOB) area programmed atomically with the
// data: the FTL journals its mapping there (see ftl.h), which is what makes
// the mapping reconstructible from media alone after a power cut. PowerCut()
// models the rail dropping mid-operation: in-flight programs leave their
// target page *torn* (unreadable, unprogrammable until the block is erased),
// in-flight erases leave the whole block torn, and every completion scheduled
// before the cut is discarded — the silicon that would have delivered it lost
// power.
#ifndef SRC_SSDDEV_NAND_H_
#define SRC_SSDDEV_NAND_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/base/status.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace lastcpu::ssddev {

struct NandGeometry {
  uint32_t dies = 4;
  uint32_t blocks_per_die = 64;
  uint32_t pages_per_block = 64;
  uint32_t page_bytes = 4096;

  uint64_t total_pages() const {
    return static_cast<uint64_t>(dies) * blocks_per_die * pages_per_block;
  }
  uint64_t total_bytes() const { return total_pages() * page_bytes; }
};

struct NandTiming {
  sim::Duration read_latency = sim::Duration::Micros(50);
  sim::Duration program_latency = sim::Duration::Micros(400);
  sim::Duration erase_latency = sim::Duration::Millis(3);
};

// Physical page address.
struct Ppa {
  uint32_t die = 0;
  uint32_t block = 0;
  uint32_t page = 0;

  friend constexpr auto operator<=>(const Ppa&, const Ppa&) = default;
};

// The out-of-band metadata programmed atomically with a page. kData pages
// carry the FTL's mapping entry (lpn + global sequence number) plus the
// filesystem identity of the page; kMeta pages hold an encoded MetaRecord
// batch (trim tombstones, file create/delete/acl — see ftl.h) whose records
// carry their own sequence numbers.
struct OobTag {
  enum class Kind : uint8_t { kNone = 0, kData = 1, kMeta = 2 };
  Kind kind = Kind::kNone;
  uint64_t seq = 0;
  uint64_t lpn = 0;
  // Filesystem piggyback (0 = not file data): which page of which file this
  // is, and the smallest file size implied durable once this page is on
  // media.
  uint32_t file_id = 0;
  uint32_t file_page = 0;
  uint64_t size_after = 0;
};

class NandArray {
 public:
  using ReadCallback = sim::MoveFn<void(Result<std::vector<uint8_t>>), 160>;
  using OpCallback = sim::MoveFn<void(Status), 160>;

  // kTorn: a program or erase lost power mid-pulse. The page reads as
  // DataLoss and cannot be programmed; only a block erase reclaims it.
  enum class PageState : uint8_t { kErased, kWritten, kTorn };

  NandArray(sim::Simulator* simulator, NandGeometry geometry = {}, NandTiming timing = {},
            uint64_t seed = 1);

  const NandGeometry& geometry() const { return geometry_; }

  // Asynchronous media operations; completion runs after the die frees up
  // plus the operation latency. Invalid addresses and constraint violations
  // (program of a non-erased page, read of an unwritten page) fail.
  void ReadPage(Ppa ppa, ReadCallback done);
  void ProgramPage(Ppa ppa, std::vector<uint8_t> data, OpCallback done);
  void ProgramPage(Ppa ppa, std::vector<uint8_t> data, OobTag tag, OpCallback done);
  void EraseBlock(uint32_t die, uint32_t block, OpCallback done);

  // The power rail drops *now*. In-flight programs tear their target page,
  // in-flight erases tear their whole block, and every scheduled completion
  // is discarded. Die timers reset — the next operation starts from a cold
  // array.
  void PowerCut();

  // Synchronous media inspection for the recovery scan (the FTL charges the
  // modeled scan latency itself via OccupyForScan).
  PageState StateOf(Ppa ppa) const;
  const OobTag& OobOf(Ppa ppa) const;
  const std::vector<uint8_t>& DataOf(Ppa ppa) const;
  // Charges `latency` of busy time to `die` (recovery OOB scan).
  void OccupyForScan(uint32_t die, sim::Duration latency) { OccupyDie(die, latency); }

  // Probability that a read returns an uncorrectable error (DataLoss), for
  // failure-injection experiments. Default 0.
  void SetReadErrorRate(double rate) { read_error_rate_ = rate; }

  // Observer of program issues, called with the cumulative count (1-based)
  // at issue time. The chaos harness uses it to land a power cut on the Kth
  // NAND program. nullptr clears it.
  using ProgramObserver = std::function<void(uint64_t programs_issued)>;
  void SetProgramObserver(ProgramObserver observer) { program_observer_ = std::move(observer); }

  uint32_t EraseCount(uint32_t die, uint32_t block) const;
  // Wear spread across the whole array.
  uint32_t MinEraseCount() const;
  uint32_t MaxEraseCount() const;
  sim::StatsRegistry& stats() { return stats_; }

 private:
  struct Block {
    std::vector<PageState> pages;
    std::vector<std::vector<uint8_t>> data;
    std::vector<OobTag> oob;
    uint32_t erase_count = 0;
  };

  struct Die {
    std::vector<Block> blocks;
    sim::SimTime busy_until;
  };

  Status CheckAddress(const Ppa& ppa) const;
  // Serializes an operation on a die; returns its completion time.
  sim::SimTime OccupyDie(uint32_t die, sim::Duration latency);

  sim::Simulator* simulator_;
  NandGeometry geometry_;
  NandTiming timing_;
  std::vector<Die> dies_;
  sim::Rng rng_;
  double read_error_rate_ = 0.0;
  // Bumped by PowerCut(); completions scheduled under an older generation
  // belong to silicon that lost power and are dropped.
  uint64_t generation_ = 0;
  std::vector<Ppa> inflight_programs_;
  std::vector<std::pair<uint32_t, uint32_t>> inflight_erases_;
  ProgramObserver program_observer_;
  sim::StatsRegistry stats_;
  // Per-IO counters resolved once; registry references are stable.
  sim::Counter& reads_ = stats_.GetCounter("reads");
  sim::Counter& programs_ = stats_.GetCounter("programs");
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_NAND_H_
