#include "src/ssddev/file_service.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {

FileService::FileService(dev::Device* host, FlashFs* fs, auth::AuthService* auth,
                         FileServiceConfig config)
    : Service(proto::ServiceDescriptor{host->id(), proto::ServiceType::kFile, "flashfs", 0}),
      host_(host),
      fs_(fs),
      auth_(auth),
      config_(config) {
  LASTCPU_CHECK(host != nullptr && fs != nullptr, "file service needs host and filesystem");
  if (host_->fabric() != nullptr) {
    bells_ = std::make_unique<fabric::DoorbellBatcher>(host_->fabric(), host_->id());
  }
}

bool FileService::Matches(const proto::DiscoverRequest& query) const {
  if (query.type != proto::ServiceType::kFile) {
    return false;
  }
  return query.resource.empty() || fs_->Exists(query.resource);
}

Result<proto::OpenResponse> FileService::Open(DeviceId client, const proto::OpenRequest& request) {
  if (!fs_->Exists(request.resource)) {
    return NotFound("no such file: " + request.resource);
  }
  std::string user;
  if (auth_ != nullptr) {
    auto resolved = auth_->UserForToken(request.auth_token);
    if (!resolved.has_value()) {
      return PermissionDenied("invalid or expired token");
    }
    user = *resolved;
    auto info = fs_->Stat(request.resource);
    if (!info->acl.MayRead(user)) {
      return PermissionDenied("user '" + user + "' may not read " + request.resource);
    }
  }
  auto instance = CreateInstance(client, request.pasid, request.resource);
  if (!instance.ok()) {
    return instance.status();
  }
  Session session;
  session.file = request.resource;
  session.user = user;
  session.pasid = request.pasid;
  session.client = client;
  sessions_.emplace(*instance, std::move(session));
  return proto::OpenResponse{*instance, SessionLayout::BytesRequired(config_.queue_depth),
                             config_.queue_depth};
}

std::optional<Result<proto::Payload>> FileService::HandleMessage(const proto::Message& message) {
  if (message.Is<proto::FileCreate>()) {
    const auto& create = message.As<proto::FileCreate>();
    FileAcl acl;
    if (auth_ != nullptr) {
      auto user = auth_->UserForToken(create.auth_token);
      if (!user.has_value()) {
        return Result<proto::Payload>(PermissionDenied("invalid or expired token"));
      }
      acl.owner = *user;
    }
    Status created = fs_->Create(create.name, std::move(acl));
    if (!created.ok()) {
      return Result<proto::Payload>(created);
    }
    host_->stats().GetCounter("files_created").Increment();
    return Result<proto::Payload>(proto::Payload(proto::FileAdminResponse{}));
  }
  if (message.Is<proto::FileDelete>()) {
    const auto& del = message.As<proto::FileDelete>();
    if (auth_ != nullptr) {
      auto user = auth_->UserForToken(del.auth_token);
      if (!user.has_value()) {
        return Result<proto::Payload>(PermissionDenied("invalid or expired token"));
      }
      auto info = fs_->Stat(del.name);
      if (!info.ok()) {
        return Result<proto::Payload>(info.status());
      }
      if (!info->acl.MayWrite(*user)) {
        return Result<proto::Payload>(
            PermissionDenied("user '" + *user + "' may not delete " + del.name));
      }
    }
    // Sessions open on the doomed file become dead resources; tell consumers
    // (Sec. 4) and drop their instances.
    std::vector<InstanceId> doomed;
    for (const auto& [id, session] : sessions_) {
      if (session.file == del.name) {
        doomed.push_back(id);
      }
    }
    for (InstanceId id : doomed) {
      InjectResourceFailure(id, "file deleted");
    }
    Status deleted = fs_->Delete(del.name);
    if (!deleted.ok()) {
      return Result<proto::Payload>(deleted);
    }
    host_->stats().GetCounter("files_deleted").Increment();
    return Result<proto::Payload>(proto::Payload(proto::FileAdminResponse{}));
  }
  if (message.Is<proto::FileList>()) {
    const auto& list = message.As<proto::FileList>();
    if (auth_ != nullptr && !auth_->ValidateToken(list.auth_token)) {
      return Result<proto::Payload>(PermissionDenied("invalid or expired token"));
    }
    host_->stats().GetCounter("file_lists").Increment();
    return Result<proto::Payload>(proto::Payload(proto::FileListResponse{fs_->List()}));
  }
  return std::nullopt;
}

FileService::Session* FileService::FindSession(InstanceId instance) {
  auto it = sessions_.find(instance);
  return it == sessions_.end() ? nullptr : &it->second;
}

Status FileService::AttachQueue(InstanceId instance, VirtAddr base) {
  Session* session = FindSession(instance);
  if (session == nullptr) {
    return NotFound("no such session");
  }
  if (session->layout.has_value()) {
    return FailedPrecondition("queue already attached");
  }
  if (base.offset() != 0) {
    return InvalidArgument("queue base must be page-aligned");
  }
  session->layout.emplace(base, config_.queue_depth);
  session->queue = std::make_unique<virtio::VirtqueueDevice>(
      host_->fabric(), host_->id(), session->pasid, base, config_.queue_depth);
  return OkStatus();
}

void FileService::OnDoorbell(InstanceId instance) { ScheduleDrain(instance); }

void FileService::ScheduleDrain(InstanceId instance) {
  Session* session = FindSession(instance);
  if (session == nullptr || session->queue == nullptr || session->drain_scheduled) {
    return;
  }
  session->drain_scheduled = true;
  // The embedded firmware picks the next request up after its dispatch cost.
  host_->simulator()->Schedule(config_.request_cost, [this, instance] { DrainSession(instance); });
}

void FileService::DrainSession(InstanceId instance) {
  Session* session = FindSession(instance);
  if (session == nullptr || session->queue == nullptr) {
    return;  // closed mid-drain
  }
  session->drain_scheduled = false;
  if (session->in_flight >= config_.max_in_flight) {
    return;  // a completion will re-arm the drain
  }
  auto chain = session->queue->PopAvail();
  if (!chain.ok() || !chain->has_value()) {
    // Queue fault or empty ring: stop draining. A fault means the client's
    // grant disappeared; the session will be torn down by close/teardown.
    return;
  }
  ++session->in_flight;
  ServeChain(instance, **chain);
  // Keep pulling while there may be more work and budget.
  if (session->in_flight < config_.max_in_flight) {
    ScheduleDrain(instance);
  }
}

void FileService::ServeChain(InstanceId instance, virtio::Chain chain) {
  Session* session = FindSession(instance);
  if (session == nullptr) {
    return;
  }
  file_requests_.Increment();
  ++requests_served_;

  // Validate the chain shape: request buffer (device-read) + response buffer
  // (device-write).
  if (chain.buffers.size() < 2 || chain.buffers[0].device_writes ||
      !chain.buffers[1].device_writes) {
    host_->stats().GetCounter("malformed_chains").Increment();
    CompleteChain(instance, chain.head,
                  FileResponseHeader{StatusCode::kInvalidArgument, 0, 0}, {},
                  chain.buffers.size() > 1 ? chain.buffers[1].addr : VirtAddr(0));
    return;
  }
  VirtAddr request_slot = chain.buffers[0].addr;
  VirtAddr response_slot = chain.buffers[1].addr;

  // Read the 16-byte header synchronously (descriptor-sized access).
  uint8_t header_bytes[FileRequestHeader::kWireBytes];
  fabric::AccessResult read = host_->fabric()->MemRead(host_->id(), session->pasid, request_slot,
                                                       header_bytes);
  if (!read.status.ok()) {
    CompleteChain(instance, chain.head, FileResponseHeader{StatusCode::kPermissionDenied, 0, 0},
                  {}, response_slot);
    return;
  }
  auto header = FileRequestHeader::DecodeFrom(header_bytes);
  if (!header.ok()) {
    CompleteChain(instance, chain.head, FileResponseHeader{StatusCode::kInvalidArgument, 0, 0},
                  {}, response_slot);
    return;
  }

  const std::string& file = session->file;
  const std::string& user = session->user;
  uint16_t head = chain.head;

  switch (header->op) {
    case FileOp::kRead: {
      uint64_t wanted = std::min<uint64_t>(header->length, kMaxReadBytes);
      fs_->Read(file, header->offset, wanted,
                [this, instance, head, response_slot](Result<std::vector<uint8_t>> data) {
                  if (!data.ok()) {
                    CompleteChain(instance, head,
                                  FileResponseHeader{data.status().code(), 0, 0}, {},
                                  response_slot);
                    return;
                  }
                  FileResponseHeader response{StatusCode::kOk,
                                              static_cast<uint32_t>(data->size()), 0};
                  CompleteChain(instance, head, response, *std::move(data), response_slot);
                });
      return;
    }
    case FileOp::kWrite:
    case FileOp::kAppend: {
      if (auth_ != nullptr) {
        auto info = fs_->Stat(file);
        if (!info.ok() || !info->acl.MayWrite(user)) {
          CompleteChain(instance, head, FileResponseHeader{StatusCode::kPermissionDenied, 0, 0},
                        {}, response_slot);
          return;
        }
      }
      if (header->length > kMaxWriteBytes) {
        CompleteChain(instance, head, FileResponseHeader{StatusCode::kInvalidArgument, 0, 0}, {},
                      response_slot);
        return;
      }
      // Pull the payload from the request slot (bulk DMA).
      bool is_append = header->op == FileOp::kAppend;
      uint64_t offset = header->offset;
      host_->fabric()->DmaRead(
          host_->id(), session->pasid, request_slot + FileRequestHeader::kWireBytes,
          header->length,
          [this, instance, head, response_slot, file, offset,
           is_append](Result<std::vector<uint8_t>> payload) {
            if (!payload.ok()) {
              CompleteChain(instance, head,
                            FileResponseHeader{payload.status().code(), 0, 0}, {}, response_slot);
              return;
            }
            if (is_append) {
              fs_->Append(file, *std::move(payload),
                          [this, instance, head, response_slot](Result<uint64_t> at) {
                            if (!at.ok()) {
                              CompleteChain(instance, head,
                                            FileResponseHeader{at.status().code(), 0, 0}, {},
                                            response_slot);
                              return;
                            }
                            CompleteChain(instance, head,
                                          FileResponseHeader{StatusCode::kOk, 0, *at}, {},
                                          response_slot);
                          });
              return;
            }
            fs_->Write(file, offset, *std::move(payload),
                       [this, instance, head, response_slot](Status s) {
                         CompleteChain(instance, head, FileResponseHeader{s.code(), 0, 0}, {},
                                       response_slot);
                       });
          });
      return;
    }
    case FileOp::kStat: {
      auto info = fs_->Stat(file);
      FileResponseHeader response{StatusCode::kOk, 0, 0};
      if (!info.ok()) {
        response.status = info.status().code();
      } else {
        response.file_size = info->size;
      }
      CompleteChain(instance, head, response, {}, response_slot);
      return;
    }
  }
}

void FileService::CompleteChain(InstanceId instance, uint16_t head,
                                const FileResponseHeader& header, std::vector<uint8_t> payload,
                                VirtAddr response_slot) {
  Session* session = FindSession(instance);
  if (session == nullptr || session->queue == nullptr) {
    return;
  }
  std::vector<uint8_t> wire(FileResponseHeader::kWireBytes + payload.size());
  header.EncodeTo(wire);
  std::copy(payload.begin(), payload.end(), wire.begin() + FileResponseHeader::kWireBytes);
  uint32_t written = static_cast<uint32_t>(wire.size());
  DeviceId client = session->client;
  Pasid pasid = session->pasid;

  if (config_.completion_batch_window > sim::Duration::Zero()) {
    // Fast path: stage the response; the window flush writes every staged
    // response in one scatter-gather DMA and rings the client once.
    session->staged.push_back(StagedCompletion{head, std::move(wire), response_slot});
    if (!session->completion_flush_scheduled) {
      session->completion_flush_scheduled = true;
      host_->simulator()->Schedule(config_.completion_batch_window,
                                   [this, instance] { FlushCompletions(instance); });
    }
    return;
  }

  host_->fabric()->DmaWrite(
      host_->id(), pasid, response_slot, std::move(wire),
      [this, instance, head, written, client](Status s) {
        Session* live = FindSession(instance);
        if (live == nullptr || live->queue == nullptr) {
          return;
        }
        (void)s;  // a failed response write surfaces as a client-side timeout
        if (live->in_flight > 0) {
          --live->in_flight;
        }
        Status pushed = live->queue->PushUsed(head, written);
        if (pushed.ok()) {
          bells_->Ring(client, instance.value());
        }
        // Serve the next pending request, if any.
        ScheduleDrain(instance);
      });
}

void FileService::FlushCompletions(InstanceId instance) {
  Session* session = FindSession(instance);
  if (session == nullptr) {
    return;  // session closed mid-window; its staged responses died with it
  }
  session->completion_flush_scheduled = false;
  std::vector<StagedCompletion> batch = std::move(session->staged);
  session->staged.clear();
  if (batch.empty() || session->queue == nullptr) {
    return;
  }
  std::vector<fabric::DmaWriteSegment> segments;
  std::vector<std::pair<uint16_t, uint32_t>> pushes;  // head, bytes written
  segments.reserve(batch.size());
  pushes.reserve(batch.size());
  for (auto& staged : batch) {
    pushes.emplace_back(staged.head, static_cast<uint32_t>(staged.wire.size()));
    segments.push_back(fabric::DmaWriteSegment{staged.response_slot, std::move(staged.wire)});
  }
  host_->stats().GetCounter("file_service_batch_flushes").Increment();
  DeviceId client = session->client;
  host_->fabric()->DmaWritev(
      host_->id(), session->pasid, std::move(segments),
      [this, instance, client, pushes = std::move(pushes)](Status s) {
        Session* live = FindSession(instance);
        if (live == nullptr || live->queue == nullptr) {
          return;
        }
        (void)s;  // a failed response write surfaces as a client-side timeout
        bool any_pushed = false;
        for (const auto& [head, written] : pushes) {
          if (live->in_flight > 0) {
            --live->in_flight;
          }
          if (live->queue->PushUsed(head, written).ok()) {
            any_pushed = true;
          }
        }
        if (any_pushed) {
          bells_->Ring(client, instance.value());
        }
        ScheduleDrain(instance);
      });
}

void FileService::InjectResourceFailure(InstanceId instance, const std::string& reason) {
  Session* session = FindSession(instance);
  if (session == nullptr) {
    return;
  }
  // Sec. 4: "It must send a message to any consumer using that resource and
  // then reset the resource."
  host_->SendOneWay(session->client,
                    proto::ResourceFailed{descriptor().name, instance, reason});
  (void)Close(instance);
}

void FileService::OnInstanceClosed(const dev::ServiceInstance& instance) {
  sessions_.erase(instance.id);
}

void FileService::PowerCut() {
  // Dropping the sessions makes every in-flight completion a no-op (they all
  // re-resolve the session first) — requests die silently, never half-done.
  sessions_.clear();
  if (bells_ != nullptr) {
    bells_->CancelPending();
  }
}

}  // namespace lastcpu::ssddev
