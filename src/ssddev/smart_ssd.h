// SmartSsd: the self-managing storage device of the CPU-less machine.
//
// Hosts the NAND array, FTL, and FlashFs, and exposes them as bus services:
// a file service (VIRTIO sessions), a loader service (Sec. 2.1), and — when
// enabled — the machine's auth service (Sec. 4 suggests a smart storage
// controller hosts access control). All request processing runs on the SSD's
// embedded firmware; no CPU is involved anywhere.
#ifndef SRC_SSDDEV_SMART_SSD_H_
#define SRC_SSDDEV_SMART_SSD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/auth/auth_service.h"
#include "src/dev/device.h"
#include "src/dev/loader_service.h"
#include "src/ssddev/file_service.h"
#include "src/ssddev/flash_fs.h"
#include "src/ssddev/ftl.h"
#include "src/ssddev/nand.h"

namespace lastcpu::ssddev {

struct SmartSsdConfig {
  NandGeometry nand;
  NandTiming timing;
  FtlConfig ftl;
  FileServiceConfig file_service;
  bool host_auth_service = true;
  dev::DeviceConfig device;
};

class SmartSsd : public dev::Device {
 public:
  SmartSsd(DeviceId id, const dev::DeviceContext& context, SmartSsdConfig config = {});

  FlashFs& fs() { return fs_; }
  Ftl& ftl() { return ftl_; }
  NandArray& nand() { return nand_; }
  FileService& file_service() { return *file_service_; }
  dev::LoaderService& loader() { return *loader_; }
  // Null when host_auth_service is false.
  auth::AuthService* auth() { return auth_; }

  // Administrative helper for examples/tests: create a file with contents and
  // an ACL, bypassing the service path (a deployment would use the loader /
  // provisioning flow).
  void ProvisionFile(const std::string& name, std::vector<uint8_t> contents, FileAcl acl = {});

 protected:
  void OnMessage(const proto::Message& message) override;
  void OnDoorbell(DeviceId from, uint64_t value) override;
  // Power-cut fault: sessions, queues, and all volatile FTL/FlashFs state
  // drop; in-flight NAND programs tear their pages. The next reset pulse
  // replays the on-media journal (Ftl::Recover + FlashFs::Recover) before
  // the device comes back alive.
  void OnPowerLoss() override;
  void OnReset() override;

 private:
  NandArray nand_;
  Ftl ftl_;
  FlashFs fs_;
  FileService* file_service_ = nullptr;
  dev::LoaderService* loader_ = nullptr;
  auth::AuthService* auth_ = nullptr;
  bool power_lost_ = false;
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_SMART_SSD_H_
