// Wire format of file-service requests inside virtqueue buffers.
//
// A request chain is two buffers in the shared application address space:
//   buffer 0 (device-readable): FileRequestHeader + inline write payload
//   buffer 1 (device-writable): FileResponseHeader + read payload
// Both ends compute the shared-memory session layout from the same constants
// here, so the OpenResponse only needs to carry depth and total size.
#ifndef SRC_SSDDEV_FILE_PROTOCOL_H_
#define SRC_SSDDEV_FILE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/virtio/virtqueue.h"

namespace lastcpu::ssddev {

enum class FileOp : uint8_t {
  kRead = 1,
  kWrite = 2,
  kAppend = 3,
  kStat = 4,
};

// Fixed 16-byte request header; a write/append payload follows immediately.
struct FileRequestHeader {
  FileOp op = FileOp::kRead;
  uint64_t offset = 0;  // ignored for append/stat
  uint32_t length = 0;  // payload bytes (write/append) or wanted bytes (read)

  static constexpr uint64_t kWireBytes = 16;
  void EncodeTo(std::span<uint8_t> out) const;
  static Result<FileRequestHeader> DecodeFrom(std::span<const uint8_t> in);
};

// Fixed 16-byte response header; read payload follows immediately.
struct FileResponseHeader {
  StatusCode status = StatusCode::kOk;
  uint32_t length = 0;      // payload bytes following the header
  uint64_t file_size = 0;   // current size (stat; append reports write offset)

  static constexpr uint64_t kWireBytes = 16;
  void EncodeTo(std::span<uint8_t> out) const;
  static Result<FileResponseHeader> DecodeFrom(std::span<const uint8_t> in);
};

// Per-request slot sizes in the shared session area. A session of depth N
// occupies: virtqueue rings + N request slots + N response slots.
inline constexpr uint64_t kRequestSlotBytes = 4096;
inline constexpr uint64_t kResponseSlotBytes = 16384;
// Largest write payload per request.
inline constexpr uint64_t kMaxWriteBytes = kRequestSlotBytes - FileRequestHeader::kWireBytes;
// Largest read payload per request.
inline constexpr uint64_t kMaxReadBytes = kResponseSlotBytes - FileResponseHeader::kWireBytes;

// Layout of a session's shared memory, computed identically on both ends.
struct SessionLayout {
  explicit SessionLayout(VirtAddr base, uint16_t depth);

  static uint64_t BytesRequired(uint16_t depth);

  VirtAddr ring_base;
  uint16_t depth;
  VirtAddr RequestSlot(uint16_t index) const;
  VirtAddr ResponseSlot(uint16_t index) const;

 private:
  VirtAddr request_area_;
  VirtAddr response_area_;
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_FILE_PROTOCOL_H_
