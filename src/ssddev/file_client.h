// FileClient: the consumer-side library for the SSD file service.
//
// This is the paper's Sec. 4 "Programmability" artifact: "the development
// environment for the smartNIC would include a library that encapsulates the
// functionality of the system bus, and provide functions for service
// discovery, resource allocation, etc." FileClient runs inside any device
// (the smart NIC's app engine, or an example harness) and performs the full
// Figure-2 bring-up: discover -> open -> allocate -> grant -> attach, then
// virtqueue I/O with doorbells.
#ifndef SRC_SSDDEV_FILE_CLIENT_H_
#define SRC_SSDDEV_FILE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/dev/device.h"
#include "src/fabric/fabric.h"
#include "src/ssddev/file_protocol.h"
#include "src/virtio/virtqueue.h"

namespace lastcpu::ssddev {

struct FileClientConfig {
  sim::Duration discover_window = sim::Duration::Micros(20);
  // Completion-poll backstop period. Doorbells are edge-triggered and carry
  // no acknowledgement, so under fault injection a dropped doorbell would
  // strand completed requests; the poll drains them. Zero (the default)
  // disables polling — on a healthy interconnect the doorbell always
  // arrives, and a disabled poll cannot perturb timing.
  sim::Duration completion_poll = sim::Duration::Zero();
  // Submission-batching window (the data-plane fast path). Zero (the
  // default) keeps the one-DMA-one-doorbell-per-request path, byte-identical
  // to the unbatched model. With a window, requests issued within it are
  // staged (each still claims its slot immediately, preserving the
  // ResourceExhausted backpressure contract), then flushed as ONE
  // scatter-gather DmaWritev of every staged request slot followed by ONE
  // doorbell — a burst of N requests costs 1 DMA transaction and 1 doorbell
  // instead of N of each.
  sim::Duration submit_batch_window = sim::Duration::Zero();
};

class FileClient {
 public:
  using OpenCallback = sim::MoveFn<void(Status), 160>;
  using ReadCallback = sim::MoveFn<void(Result<std::vector<uint8_t>>), 160>;
  using WriteCallback = sim::MoveFn<void(Status), 160>;
  using AppendCallback = sim::MoveFn<void(Result<uint64_t>), 160>;
  using StatCallback = sim::MoveFn<void(Result<uint64_t>), 160>;

  // `host` is the device this client runs on; `pasid` the application's
  // address space. The host must forward doorbells via HandleDoorbell.
  // Registers a peer-failed hook on the host: when the bus declares this
  // session's provider failed, outstanding requests complete with
  // kUnavailable and the session resets.
  FileClient(dev::Device* host, Pasid pasid, FileClientConfig config = {});
  ~FileClient();
  FileClient(const FileClient&) = delete;
  FileClient& operator=(const FileClient&) = delete;

  // Runs the full session bring-up for `file`. Requires a live memory
  // controller and a file service owning the file somewhere on the bus.
  void Open(const std::string& file, uint64_t auth_token, OpenCallback done);

  bool ready() const { return queue_ != nullptr; }
  // True when a request can be issued right now without being rejected.
  bool HasFreeSlot() const { return queue_ != nullptr && !free_slots_.empty(); }
  // Requests submitted and not yet completed.
  size_t InFlight() const { return in_flight_count_; }
  // Invoked whenever a request slot frees up (completion or failure), so
  // callers can implement backpressure queues.
  void SetSlotAvailableCallback(std::function<void()> fn) { on_slot_available_ = std::move(fn); }
  DeviceId provider() const { return provider_; }
  InstanceId instance() const { return instance_; }
  VirtAddr session_base() const { return session_base_; }

  // --- I/O (session must be ready) ------------------------------------------

  void ReadAt(uint64_t offset, uint32_t length, ReadCallback done);
  void WriteAt(uint64_t offset, std::vector<uint8_t> data, WriteCallback done);
  void Append(std::vector<uint8_t> data, AppendCallback done);
  void Stat(StatCallback done);

  // Closes the instance and frees the session memory.
  void Close(sim::MoveFn<void(Status), 160> done);

  // The host device must call this from its OnDoorbell for doorbells whose
  // value equals this session's instance id. Returns true when consumed.
  bool HandleDoorbell(DeviceId from, uint64_t value);

  // Fails every outstanding request (e.g. the provider died).
  void AbortAll(Status reason);

  // Drops all session state without any protocol exchange (the provider is
  // gone). A subsequent Open() re-runs the full bring-up; the application's
  // old session memory is reclaimed at app teardown.
  void Reset(Status reason);

  // Rings coalesced into a trailing doorbell by this client's batcher.
  uint64_t doorbells_coalesced() const;

 private:
  struct Pending {
    uint16_t slot = 0;
    FileOp op = FileOp::kRead;
    ReadCallback on_read;
    WriteCallback on_write;
    AppendCallback on_append;
    StatCallback on_stat;
  };

  // One request staged for the next batch flush (submit_batch_window > 0).
  struct Staged {
    uint16_t slot = 0;
    std::vector<uint8_t> wire;
    VirtAddr request_slot;
    VirtAddr response_slot;
    uint32_t request_len = 0;
    Pending pending;
  };

  // Issues one request: writes the slot, submits the chain, rings the bell.
  void Issue(FileRequestHeader header, std::vector<uint8_t> payload, Pending pending);
  // Flushes every staged request as one DmaWritev + one doorbell.
  void FlushBatch();
  // Arms the completion-poll backstop daemon for the current session.
  void StartCompletionPoll();
  void DrainCompletions();
  void CompleteOne(uint16_t head, Pending pending);
  void Fail(Pending& pending, Status status);
  // Returns a slot to the free pool and fires the availability callback.
  void ReleaseSlot(uint16_t slot);

  dev::Device* host_;
  Pasid pasid_;
  FileClientConfig config_;
  // Per-request counter resolved once from the host's registry (declared
  // after host_, so the reference is valid at construction).
  sim::Counter& requests_ = host_->stats().GetCounter("file_client_requests");

  DeviceId provider_;
  DeviceId memctrl_;
  InstanceId instance_;
  VirtAddr session_base_;
  uint64_t session_bytes_ = 0;
  uint16_t depth_ = 0;
  std::optional<SessionLayout> layout_;
  std::unique_ptr<virtio::VirtqueueDriver> queue_;
  std::vector<uint16_t> free_slots_;
  // In-flight requests keyed by chain head descriptor index. Heads are
  // small dense integers (bounded by the queue's descriptor table), so a
  // flat slot table replaces the rb-tree map — no node allocation and no
  // ordered walk per request.
  std::vector<std::optional<Pending>> in_flight_;
  size_t in_flight_count_ = 0;
  std::vector<Staged> staged_;             // awaiting the next batch flush
  // Armed while a batch flush is pending; cancelled when the batch aborts.
  sim::ScopedEvent flush_;
  std::unique_ptr<fabric::DoorbellBatcher> bells_;
  std::function<void()> on_slot_available_;
  // Why the session was last torn down. Submit-path continuations that find
  // the session gone report this, so a provider power loss surfaces as
  // Unavailable (not a generic Aborted) in every interleaving.
  Status reset_reason_ = Aborted("session reset during submit");
  uint64_t peer_failed_hook_ = 0;
  uint64_t permanent_failed_hook_ = 0;
  // The periodic completion-poll backstop; cancelled on session turnover.
  sim::ScopedEvent poll_;
};

// Session-less file administration from any device: create or delete a file
// on a file-service provider (used e.g. by the KVS compactor to roll logs).
void CreateRemoteFile(dev::Device* host, DeviceId provider, const std::string& name,
                      uint64_t auth_token, std::function<void(Status)> done);
void DeleteRemoteFile(dev::Device* host, DeviceId provider, const std::string& name,
                      uint64_t auth_token, std::function<void(Status)> done);
void ListRemoteFiles(dev::Device* host, DeviceId provider, uint64_t auth_token,
                     std::function<void(Result<std::vector<std::string>>)> done);

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_FILE_CLIENT_H_
