// Flash translation layer: page-mapped, with greedy garbage collection.
//
// Exposes a flat logical-page space (the usable capacity after
// over-provisioning) on top of the NAND constraints: out-of-place writes,
// per-die striping for parallelism, invalidation tracking, and background GC
// that relocates valid pages out of the emptiest victim block before erasing
// it. Write amplification is measured, not assumed.
#ifndef SRC_SSDDEV_FTL_H_
#define SRC_SSDDEV_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/base/status.h"
#include "src/ssddev/nand.h"

namespace lastcpu::ssddev {

struct FtlConfig {
  double over_provisioning = 0.25;  // fraction of raw capacity reserved
  uint32_t gc_free_block_threshold = 2;  // per die, start GC below this
  // SSD-DRAM read cache (pages). Hot logical pages are served from device
  // DRAM without occupying a NAND die. 0 disables.
  uint32_t read_cache_pages = 1024;
  sim::Duration read_cache_latency = sim::Duration::Micros(1);
};

class Ftl {
 public:
  // Reads complete with a view of the page, not an owned copy: the bytes are
  // valid only for the duration of the callback (they belong to the device
  // read cache or to the NAND completion). Callers that need data past the
  // callback copy the slice they want — which every caller does anyway, and
  // the common cache-hit path stops paying a full-page copy.
  // 232-byte tier, sized from both ends: wide enough that a filesystem
  // continuation capturing one 160-tier completion plus a name and offsets
  // (~232 bytes) stays inline, and narrow enough that this callback plus a
  // cached-page reference still fits an EventFn's 256-byte buffer exactly.
  using ReadCallback = sim::MoveFn<void(Result<std::span<const uint8_t>>), 232>;
  using WriteCallback = sim::MoveFn<void(Status), 232>;

  Ftl(sim::Simulator* simulator, NandArray* nand, FtlConfig config = {});

  // Host-visible logical pages.
  uint64_t logical_pages() const { return logical_pages_; }
  uint32_t page_bytes() const { return nand_->geometry().page_bytes; }

  // Reads a logical page. Unwritten pages return NotFound.
  void Read(uint64_t lpn, ReadCallback done);

  // Writes a logical page out of place; old data is invalidated.
  void Write(uint64_t lpn, std::vector<uint8_t> data, WriteCallback done);

  // Discards a logical page (file deletion path).
  void Trim(uint64_t lpn);

  bool IsMapped(uint64_t lpn) const;

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  // nand-writes / host-writes; 0 when nothing written yet.
  double WriteAmplification() const;
  uint64_t gc_runs() const { return gc_runs_; }
  sim::StatsRegistry& stats() { return stats_; }

 private:
  struct BlockInfo {
    std::vector<int64_t> lpn_of_page;  // -1 = invalid / erased
    uint32_t valid = 0;
    uint32_t next_page = 0;  // program cursor; == pages_per_block when full
    bool is_active = false;
    bool is_free = true;
  };

  struct DieState {
    std::vector<BlockInfo> blocks;
    std::deque<uint32_t> free_blocks;
    std::optional<uint32_t> active_block;
  };

  // Claims the next programmable PPA, opening a fresh block when needed.
  Result<Ppa> ClaimSlot();

  // Records that `ppa` now holds `lpn` (and invalidates any prior location).
  void CommitMapping(uint64_t lpn, Ppa ppa);
  void InvalidateCurrent(uint64_t lpn);

  // Read-cache (LRU over logical pages backed by SSD DRAM). Pages are held
  // behind shared_ptr so a hit hands out a reference, not a copy — in-flight
  // readers keep evicted pages alive. Inserts carry the write epoch observed
  // when the miss started; a write/trim in between bumps the epoch and the
  // stale fill is dropped.
  using CachedPage = std::shared_ptr<const std::vector<uint8_t>>;
  CachedPage CacheLookup(uint64_t lpn);
  void CacheInsert(uint64_t lpn, uint32_t epoch, CachedPage data);
  void CacheInvalidate(uint64_t lpn);

  // Kicks GC if any die runs low on free blocks. One collection at a time.
  void MaybeStartGc();
  void RelocateNext(uint32_t die, uint32_t block, std::vector<uint64_t> lpns, size_t index);
  void FinishGc(uint32_t die, uint32_t block);

  sim::Simulator* simulator_;
  NandArray* nand_;
  FtlConfig config_;
  uint64_t logical_pages_;
  std::vector<std::optional<Ppa>> mapping_;
  std::vector<DieState> dies_;
  uint32_t next_die_ = 0;
  bool gc_in_progress_ = false;
  uint64_t host_writes_ = 0;
  uint64_t nand_writes_ = 0;
  uint64_t gc_runs_ = 0;
  // LRU read cache: list front = most recent; map lpn -> list iterator.
  std::list<std::pair<uint64_t, CachedPage>> cache_lru_;
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, CachedPage>>::iterator>
      cache_index_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  std::vector<uint32_t> write_epoch_;
  sim::StatsRegistry stats_;
  // Per-IO counters resolved once; registry references are stable.
  sim::Counter& host_reads_stat_ = stats_.GetCounter("host_reads");
  sim::Counter& host_writes_stat_ = stats_.GetCounter("host_writes");
  sim::Counter& cache_hits_stat_ = stats_.GetCounter("cache_hits");
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_FTL_H_
