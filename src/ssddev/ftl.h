// Flash translation layer: page-mapped, with greedy/cost-benefit garbage
// collection, wear-leveling, and a persistent mapping log.
//
// Exposes a flat logical-page space (the usable capacity after
// over-provisioning) on top of the NAND constraints: out-of-place writes,
// per-die striping for parallelism, invalidation tracking, and background GC
// that relocates valid pages out of the emptiest victim block before erasing
// it. Write amplification is measured, not assumed.
//
// Durability model. Every data program carries an OOB tag {seq, lpn, file
// identity}; trims and filesystem metadata are journaled as records batched
// into dedicated meta pages. The mapping is therefore reconstructible from
// media alone: Recover() scans every OOB area, merges highest-seq-wins per
// lpn, applies trim tombstones, discards torn pages (interrupted programs),
// and reseeds the sequence counter past everything seen. GC relocations
// rewrite the source page's tag under a fresh sequence number, so a power cut
// mid-GC leaves either the old or the new copy the winner — never neither.
// There is no checkpoint: recovery cost is one full OOB scan (charged to the
// dies as modeled busy time).
#ifndef SRC_SSDDEV_FTL_H_
#define SRC_SSDDEV_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/base/status.h"
#include "src/ssddev/nand.h"

namespace lastcpu::ssddev {

struct FtlConfig {
  double over_provisioning = 0.25;  // fraction of raw capacity reserved
  uint32_t gc_free_block_threshold = 2;  // per die, start GC below this
  // SSD-DRAM read cache (pages). Hot logical pages are served from device
  // DRAM without occupying a NAND die. 0 disables.
  uint32_t read_cache_pages = 1024;
  sim::Duration read_cache_latency = sim::Duration::Micros(1);
  // Cost-benefit victim selection: blocks programmed within this window are
  // skipped when an older candidate exists (young blocks are likely to keep
  // self-invalidating; relocating them is wasted work).
  sim::Duration gc_min_block_age = sim::Duration::Millis(2);
  // Wear-leveling: open the free block with the lowest erase count instead
  // of FIFO order.
  bool wear_leveling = true;
  // When no slot is free but GC can still reclaim space, host writes stall
  // in a bounded queue (pumped as GC frees blocks) instead of failing.
  uint32_t max_stalled_writes = 256;
  // Modeled per-page cost of the recovery OOB scan, charged to each die.
  sim::Duration recovery_scan_per_page = sim::Duration::Nanos(200);
};

// A durable journal record carried in meta pages. Trim tombstones and
// filesystem metadata share one record stream; each record owns a sequence
// number drawn from the same counter as data-page OOB tags, so replay is a
// single highest-seq-wins merge across both streams.
struct MetaRecord {
  enum class Kind : uint8_t { kTrim = 1, kFsCreate = 2, kFsDelete = 3, kFsAcl = 4 };
  Kind kind = Kind::kTrim;
  uint64_t seq = 0;      // assigned by AppendMeta
  uint64_t lpn = 0;      // kTrim
  uint32_t file_id = 0;  // kFs*
  std::string name;      // kFsCreate
  std::string acl_owner;
  std::vector<std::string> acl_readers;
  std::vector<std::string> acl_writers;
};

// One live data page with a filesystem identity, as rebuilt by Recover().
struct RecoveredFilePage {
  uint32_t file_id = 0;
  uint32_t file_page = 0;
  uint64_t lpn = 0;
  uint64_t seq = 0;
  uint64_t size_after = 0;
};

class Ftl {
 public:
  // Reads complete with a view of the page, not an owned copy: the bytes are
  // valid only for the duration of the callback (they belong to the device
  // read cache or to the NAND completion). Callers that need data past the
  // callback copy the slice they want — which every caller does anyway, and
  // the common cache-hit path stops paying a full-page copy.
  // 232-byte tier, sized from both ends: wide enough that a filesystem
  // continuation capturing one 160-tier completion plus a name and offsets
  // (~232 bytes) stays inline, and narrow enough that this callback plus a
  // cached-page reference still fits an EventFn's 256-byte buffer exactly.
  using ReadCallback = sim::MoveFn<void(Result<std::span<const uint8_t>>), 232>;
  using WriteCallback = sim::MoveFn<void(Status), 232>;

  // Filesystem identity journaled with a data page (all-zero = anonymous).
  struct FileTag {
    uint32_t file_id = 0;
    uint32_t file_page = 0;
    uint64_t size_after = 0;
  };

  Ftl(sim::Simulator* simulator, NandArray* nand, FtlConfig config = {});

  // Host-visible logical pages.
  uint64_t logical_pages() const { return logical_pages_; }
  uint32_t page_bytes() const { return nand_->geometry().page_bytes; }

  // Reads a logical page. Unwritten pages return NotFound.
  void Read(uint64_t lpn, ReadCallback done);

  // Writes a logical page out of place; old data is invalidated. Writes to
  // the same lpn are serialized in submission order (media sequence numbers
  // must match ack order, or recovery could resurrect a superseded value).
  void Write(uint64_t lpn, std::vector<uint8_t> data, WriteCallback done);
  void Write(uint64_t lpn, std::vector<uint8_t> data, FileTag tag, WriteCallback done);

  // Discards a logical page (file deletion path). Applied in memory
  // immediately; the durable tombstone rides the next meta-page flush.
  void Trim(uint64_t lpn);

  // Appends a journal record (assigns its seq). Records buffer in DRAM and
  // flush to a meta page when the buffer fills or SyncMeta is called.
  void AppendMeta(MetaRecord record);
  // Completes once every record appended so far is durable on media.
  void SyncMeta(WriteCallback done);

  // The power rail drops: every in-flight host op fails with Unavailable,
  // unflushed journal records are lost, all volatile state (mapping, block
  // accounting, cache) is dropped, and the NAND tears in-flight programs.
  void PowerCut();

  // Rebuilds mapping and block accounting from the media's OOB stream, then
  // exposes the replayed record stream / live file pages for the filesystem
  // layer. Charges one full OOB scan of modeled busy time to each die.
  void Recover();
  const std::vector<MetaRecord>& recovered_meta() const { return recovered_meta_; }
  const std::vector<RecoveredFilePage>& recovered_file_pages() const {
    return recovered_file_pages_;
  }

  bool IsMapped(uint64_t lpn) const;

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }

  // nand-writes / host-writes; 0 when nothing written yet. Meta-page and GC
  // programs count as nand writes (they are the amplification).
  double WriteAmplification() const;
  uint64_t host_writes() const { return host_writes_; }
  uint64_t nand_writes() const { return nand_writes_; }
  uint64_t gc_runs() const { return gc_runs_; }
  uint64_t gc_relocated_pages() const { return gc_relocated_pages_; }
  uint64_t write_stalls() const { return write_stalls_; }
  uint64_t recoveries() const { return recoveries_; }
  sim::StatsRegistry& stats() { return stats_; }

 private:
  // lpn_of_page sentinel for meta (journal) pages: live, but not mapped.
  static constexpr int64_t kMetaPage = -2;

  struct BlockInfo {
    std::vector<int64_t> lpn_of_page;  // -1 = invalid / erased; -2 = meta
    uint32_t valid = 0;
    uint32_t next_page = 0;  // program cursor; == pages_per_block when full
    uint32_t inflight = 0;   // programs issued but not yet completed
    bool is_active = false;
    bool is_free = true;
    sim::SimTime last_program;  // cost-benefit GC age
  };

  struct DieState {
    std::vector<BlockInfo> blocks;
    std::deque<uint32_t> free_blocks;
    std::optional<uint32_t> active_block;
  };

  // An op queued behind an in-flight write to the same lpn: either a write
  // (data + tag, completion in pending_writes_) or a trim.
  struct QueuedOp {
    bool is_trim = false;
    std::vector<uint8_t> data;
    FileTag tag;
    uint64_t op = 0;
  };
  struct LpnGate {
    bool write_in_flight = false;
    std::deque<QueuedOp> queue;
  };

  struct StalledWrite {
    uint64_t lpn = 0;
    std::vector<uint8_t> data;
    FileTag tag;
    uint64_t op = 0;
  };

  void InitVolatile();

  // Pending-op registry: every host completion is delivered through a take,
  // so a power cut can fail all in-flight ops exactly once and late NAND
  // completions (already dropped by the array's generation check) can never
  // double-deliver.
  std::optional<ReadCallback> TakeRead(uint64_t op);
  std::optional<WriteCallback> TakeWrite(uint64_t op);
  void FailWriteSoon(uint64_t op, Status status);

  // Claims the next programmable PPA, opening a fresh block when needed.
  Result<Ppa> ClaimSlot();

  void StartWrite(uint64_t lpn, std::vector<uint8_t> data, FileTag tag, uint64_t op);
  // Releases the lpn's write gate and runs queued same-lpn ops.
  void FinishLpnOp(uint64_t lpn);
  void ApplyTrim(uint64_t lpn);

  // Records that `ppa` now holds `lpn` (and invalidates any prior location).
  void CommitMapping(uint64_t lpn, Ppa ppa, uint64_t seq);
  void InvalidateCurrent(uint64_t lpn);

  // Meta journal: group-commit flush of the DRAM record buffer.
  void MaybeFlushMeta();
  void FlushMeta();

  // Read-cache (LRU over logical pages backed by SSD DRAM). Pages are held
  // behind shared_ptr so a hit hands out a reference, not a copy — in-flight
  // readers keep evicted pages alive. Inserts carry the write epoch observed
  // when the miss started; a write/trim in between bumps the epoch and the
  // stale fill is dropped.
  using CachedPage = std::shared_ptr<const std::vector<uint8_t>>;
  CachedPage CacheLookup(uint64_t lpn);
  void CacheInsert(uint64_t lpn, uint32_t epoch, CachedPage data);
  void CacheInvalidate(uint64_t lpn);

  // Kicks GC if any die runs low on free blocks. One collection at a time.
  std::optional<std::pair<uint32_t, uint32_t>> FindVictim() const;
  bool CanGcReclaim() const;
  void MaybeStartGc();
  void RelocateNext(uint32_t die, uint32_t block, std::vector<uint32_t> pages, size_t index);
  void RelocateMetaPage(uint32_t die, uint32_t block, std::vector<uint32_t> pages, size_t index,
                        Ppa source);
  void FinishGc(uint32_t die, uint32_t block);
  // GC cannot relocate for lack of slots: fail everything waiting on it.
  void AbortGcWedged(const Status& why);
  void PumpStalled();

  sim::Simulator* simulator_;
  NandArray* nand_;
  FtlConfig config_;
  uint64_t logical_pages_;
  std::vector<std::optional<Ppa>> mapping_;
  // Media sequence number of the tag backing each mapping (tombstone pruning
  // during meta-page relocation compares against this).
  std::vector<uint64_t> mapping_seq_;
  std::vector<DieState> dies_;
  uint32_t next_die_ = 0;
  bool gc_in_progress_ = false;
  bool powered_off_ = false;
  uint64_t seq_ = 1;
  uint64_t host_writes_ = 0;
  uint64_t nand_writes_ = 0;
  uint64_t gc_runs_ = 0;
  uint64_t gc_relocated_pages_ = 0;
  uint64_t write_stalls_ = 0;
  uint64_t recoveries_ = 0;

  uint64_t next_op_ = 1;
  std::map<uint64_t, ReadCallback> pending_reads_;
  std::map<uint64_t, WriteCallback> pending_writes_;
  std::map<uint64_t, LpnGate> gates_;
  std::deque<StalledWrite> stalled_;

  // Meta journal buffer and group-commit state. Waiters attached to the
  // in-flight flush complete with it; waiters needing records buffered after
  // the flush started ride the next one.
  std::vector<MetaRecord> meta_buffer_;
  size_t meta_buffer_bytes_ = 0;
  bool meta_flush_in_flight_ = false;
  bool meta_flush_stalled_ = false;
  std::vector<WriteCallback> meta_waiters_inflight_;
  std::vector<WriteCallback> meta_waiters_queued_;

  std::vector<MetaRecord> recovered_meta_;
  std::vector<RecoveredFilePage> recovered_file_pages_;

  // LRU read cache: list front = most recent; map lpn -> list iterator.
  std::list<std::pair<uint64_t, CachedPage>> cache_lru_;
  std::unordered_map<uint64_t, std::list<std::pair<uint64_t, CachedPage>>::iterator>
      cache_index_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  std::vector<uint32_t> write_epoch_;
  sim::StatsRegistry stats_;
  // Per-IO counters resolved once; registry references are stable.
  sim::Counter& host_reads_stat_ = stats_.GetCounter("host_reads");
  sim::Counter& host_writes_stat_ = stats_.GetCounter("host_writes");
  sim::Counter& cache_hits_stat_ = stats_.GetCounter("cache_hits");
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_FTL_H_
