#include "src/ssddev/file_protocol.h"

#include "src/base/check.h"

namespace lastcpu::ssddev {
namespace {

void PutU32At(std::span<uint8_t> out, size_t at, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

void PutU64At(std::span<uint8_t> out, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

uint32_t GetU32At(std::span<const uint8_t> in, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<size_t>(i)];
  }
  return v;
}

uint64_t GetU64At(std::span<const uint8_t> in, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<size_t>(i)];
  }
  return v;
}

}  // namespace

void FileRequestHeader::EncodeTo(std::span<uint8_t> out) const {
  LASTCPU_CHECK(out.size() >= kWireBytes, "request header buffer too small");
  out[0] = static_cast<uint8_t>(op);
  out[1] = out[2] = out[3] = 0;
  PutU64At(out, 4, offset);
  PutU32At(out, 12, length);
}

Result<FileRequestHeader> FileRequestHeader::DecodeFrom(std::span<const uint8_t> in) {
  if (in.size() < kWireBytes) {
    return InvalidArgument("truncated file request header");
  }
  if (in[0] < static_cast<uint8_t>(FileOp::kRead) || in[0] > static_cast<uint8_t>(FileOp::kStat)) {
    return InvalidArgument("unknown file op");
  }
  FileRequestHeader header;
  header.op = static_cast<FileOp>(in[0]);
  header.offset = GetU64At(in, 4);
  header.length = GetU32At(in, 12);
  return header;
}

void FileResponseHeader::EncodeTo(std::span<uint8_t> out) const {
  LASTCPU_CHECK(out.size() >= kWireBytes, "response header buffer too small");
  out[0] = static_cast<uint8_t>(status);
  out[1] = out[2] = out[3] = 0;
  PutU32At(out, 4, length);
  PutU64At(out, 8, file_size);
}

Result<FileResponseHeader> FileResponseHeader::DecodeFrom(std::span<const uint8_t> in) {
  if (in.size() < kWireBytes) {
    return InvalidArgument("truncated file response header");
  }
  FileResponseHeader header;
  header.status = static_cast<StatusCode>(in[0]);
  header.length = GetU32At(in, 4);
  header.file_size = GetU64At(in, 8);
  return header;
}

SessionLayout::SessionLayout(VirtAddr base, uint16_t queue_depth)
    : ring_base(base), depth(queue_depth) {
  uint64_t ring_bytes = PageCeil(virtio::VirtqueueLayout::BytesRequired(queue_depth));
  request_area_ = base + ring_bytes;
  response_area_ = request_area_ + kRequestSlotBytes * queue_depth;
}

uint64_t SessionLayout::BytesRequired(uint16_t depth) {
  return PageCeil(virtio::VirtqueueLayout::BytesRequired(depth)) +
         depth * (kRequestSlotBytes + kResponseSlotBytes);
}

VirtAddr SessionLayout::RequestSlot(uint16_t index) const {
  LASTCPU_CHECK(index < depth, "slot index out of range");
  return request_area_ + static_cast<uint64_t>(index) * kRequestSlotBytes;
}

VirtAddr SessionLayout::ResponseSlot(uint16_t index) const {
  LASTCPU_CHECK(index < depth, "slot index out of range");
  return response_area_ + static_cast<uint64_t>(index) * kResponseSlotBytes;
}

}  // namespace lastcpu::ssddev
