#include "src/ssddev/nand.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {

NandArray::NandArray(sim::Simulator* simulator, NandGeometry geometry, NandTiming timing,
                     uint64_t seed)
    : simulator_(simulator), geometry_(geometry), timing_(timing), rng_(seed) {
  LASTCPU_CHECK(simulator != nullptr, "NAND needs a simulator");
  LASTCPU_CHECK(geometry.dies > 0 && geometry.blocks_per_die > 0 && geometry.pages_per_block > 0,
                "degenerate NAND geometry");
  dies_.resize(geometry.dies);
  for (auto& die : dies_) {
    die.blocks.resize(geometry.blocks_per_die);
    for (auto& block : die.blocks) {
      block.pages.assign(geometry.pages_per_block, PageState::kErased);
      block.data.resize(geometry.pages_per_block);
    }
  }
}

Status NandArray::CheckAddress(const Ppa& ppa) const {
  if (ppa.die >= geometry_.dies || ppa.block >= geometry_.blocks_per_die ||
      ppa.page >= geometry_.pages_per_block) {
    return InvalidArgument("physical page address out of range");
  }
  return OkStatus();
}

sim::SimTime NandArray::OccupyDie(uint32_t die, sim::Duration latency) {
  Die& d = dies_[die];
  sim::SimTime start = std::max(simulator_->Now(), d.busy_until);
  sim::SimTime done = start + latency;
  d.busy_until = done;
  return done;
}

void NandArray::ReadPage(Ppa ppa, ReadCallback done) {
  LASTCPU_CHECK(done != nullptr, "NAND read without callback");
  Status valid = CheckAddress(ppa);
  if (!valid.ok()) {
    simulator_->Schedule(sim::Duration::Nanos(100),
                         [done = std::move(done), valid] { done(valid); });
    return;
  }
  sim::SimTime completion = OccupyDie(ppa.die, timing_.read_latency);
  reads_.Increment();
  bool inject_error = read_error_rate_ > 0.0 && rng_.NextBool(read_error_rate_);
  simulator_->ScheduleAt(completion, [this, ppa, inject_error, done = std::move(done)] {
    if (inject_error) {
      stats_.GetCounter("read_errors").Increment();
      done(DataLoss("uncorrectable ECC error"));
      return;
    }
    const Block& block = dies_[ppa.die].blocks[ppa.block];
    if (block.pages[ppa.page] != PageState::kWritten) {
      done(FailedPrecondition("reading an unwritten page"));
      return;
    }
    done(block.data[ppa.page]);
  });
}

void NandArray::ProgramPage(Ppa ppa, std::vector<uint8_t> data, OpCallback done) {
  LASTCPU_CHECK(done != nullptr, "NAND program without callback");
  Status valid = CheckAddress(ppa);
  if (valid.ok() && data.size() > geometry_.page_bytes) {
    valid = InvalidArgument("program larger than a page");
  }
  if (!valid.ok()) {
    simulator_->Schedule(sim::Duration::Nanos(100),
                         [done = std::move(done), valid] { done(valid); });
    return;
  }
  sim::SimTime completion = OccupyDie(ppa.die, timing_.program_latency);
  programs_.Increment();
  simulator_->ScheduleAt(completion,
                         [this, ppa, data = std::move(data), done = std::move(done)]() mutable {
                           Block& block = dies_[ppa.die].blocks[ppa.block];
                           if (block.pages[ppa.page] != PageState::kErased) {
                             done(FailedPrecondition("program of a non-erased page"));
                             return;
                           }
                           block.pages[ppa.page] = PageState::kWritten;
                           block.data[ppa.page] = std::move(data);
                           done(OkStatus());
                         });
}

void NandArray::EraseBlock(uint32_t die, uint32_t block, OpCallback done) {
  LASTCPU_CHECK(done != nullptr, "NAND erase without callback");
  if (die >= geometry_.dies || block >= geometry_.blocks_per_die) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(InvalidArgument("erase address out of range"));
    });
    return;
  }
  sim::SimTime completion = OccupyDie(die, timing_.erase_latency);
  stats_.GetCounter("erases").Increment();
  simulator_->ScheduleAt(completion, [this, die, block, done = std::move(done)] {
    Block& b = dies_[die].blocks[block];
    b.pages.assign(geometry_.pages_per_block, PageState::kErased);
    for (auto& page : b.data) {
      page.clear();
    }
    ++b.erase_count;
    done(OkStatus());
  });
}

uint32_t NandArray::EraseCount(uint32_t die, uint32_t block) const {
  LASTCPU_CHECK(die < geometry_.dies && block < geometry_.blocks_per_die, "bad block address");
  return dies_[die].blocks[block].erase_count;
}

}  // namespace lastcpu::ssddev
