#include "src/ssddev/nand.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {

NandArray::NandArray(sim::Simulator* simulator, NandGeometry geometry, NandTiming timing,
                     uint64_t seed)
    : simulator_(simulator), geometry_(geometry), timing_(timing), rng_(seed) {
  LASTCPU_CHECK(simulator != nullptr, "NAND needs a simulator");
  LASTCPU_CHECK(geometry.dies > 0 && geometry.blocks_per_die > 0 && geometry.pages_per_block > 0,
                "degenerate NAND geometry");
  dies_.resize(geometry.dies);
  for (auto& die : dies_) {
    die.blocks.resize(geometry.blocks_per_die);
    for (auto& block : die.blocks) {
      block.pages.assign(geometry.pages_per_block, PageState::kErased);
      block.data.resize(geometry.pages_per_block);
      block.oob.resize(geometry.pages_per_block);
    }
  }
}

Status NandArray::CheckAddress(const Ppa& ppa) const {
  if (ppa.die >= geometry_.dies || ppa.block >= geometry_.blocks_per_die ||
      ppa.page >= geometry_.pages_per_block) {
    return InvalidArgument("physical page address out of range");
  }
  return OkStatus();
}

sim::SimTime NandArray::OccupyDie(uint32_t die, sim::Duration latency) {
  Die& d = dies_[die];
  sim::SimTime start = std::max(simulator_->Now(), d.busy_until);
  sim::SimTime done = start + latency;
  d.busy_until = done;
  return done;
}

void NandArray::ReadPage(Ppa ppa, ReadCallback done) {
  LASTCPU_CHECK(done != nullptr, "NAND read without callback");
  Status valid = CheckAddress(ppa);
  if (!valid.ok()) {
    simulator_->Schedule(sim::Duration::Nanos(100),
                         [done = std::move(done), valid] { done(valid); });
    return;
  }
  sim::SimTime completion = OccupyDie(ppa.die, timing_.read_latency);
  reads_.Increment();
  bool inject_error = read_error_rate_ > 0.0 && rng_.NextBool(read_error_rate_);
  uint64_t gen = generation_;
  simulator_->ScheduleAt(completion, [this, ppa, inject_error, gen, done = std::move(done)] {
    if (gen != generation_) {
      return;  // the array lost power before this completed
    }
    if (inject_error) {
      stats_.GetCounter("read_errors").Increment();
      done(DataLoss("uncorrectable ECC error"));
      return;
    }
    const Block& block = dies_[ppa.die].blocks[ppa.block];
    if (block.pages[ppa.page] == PageState::kTorn) {
      done(DataLoss("torn page (interrupted program)"));
      return;
    }
    if (block.pages[ppa.page] != PageState::kWritten) {
      done(FailedPrecondition("reading an unwritten page"));
      return;
    }
    done(block.data[ppa.page]);
  });
}

void NandArray::ProgramPage(Ppa ppa, std::vector<uint8_t> data, OpCallback done) {
  ProgramPage(ppa, std::move(data), OobTag{}, std::move(done));
}

void NandArray::ProgramPage(Ppa ppa, std::vector<uint8_t> data, OobTag tag, OpCallback done) {
  LASTCPU_CHECK(done != nullptr, "NAND program without callback");
  Status valid = CheckAddress(ppa);
  if (valid.ok() && data.size() > geometry_.page_bytes) {
    valid = InvalidArgument("program larger than a page");
  }
  if (!valid.ok()) {
    simulator_->Schedule(sim::Duration::Nanos(100),
                         [done = std::move(done), valid] { done(valid); });
    return;
  }
  sim::SimTime completion = OccupyDie(ppa.die, timing_.program_latency);
  programs_.Increment();
  inflight_programs_.push_back(ppa);
  if (program_observer_) {
    program_observer_(programs_.value());
  }
  uint64_t gen = generation_;
  simulator_->ScheduleAt(
      completion, [this, ppa, gen, tag, data = std::move(data), done = std::move(done)]() mutable {
        if (gen != generation_) {
          return;  // power lost mid-program: the page is already torn
        }
        inflight_programs_.erase(
            std::find(inflight_programs_.begin(), inflight_programs_.end(), ppa));
        Block& block = dies_[ppa.die].blocks[ppa.block];
        if (block.pages[ppa.page] != PageState::kErased) {
          done(FailedPrecondition("program of a non-erased page"));
          return;
        }
        block.pages[ppa.page] = PageState::kWritten;
        block.data[ppa.page] = std::move(data);
        block.oob[ppa.page] = tag;
        done(OkStatus());
      });
}

void NandArray::EraseBlock(uint32_t die, uint32_t block, OpCallback done) {
  LASTCPU_CHECK(done != nullptr, "NAND erase without callback");
  if (die >= geometry_.dies || block >= geometry_.blocks_per_die) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(InvalidArgument("erase address out of range"));
    });
    return;
  }
  sim::SimTime completion = OccupyDie(die, timing_.erase_latency);
  stats_.GetCounter("erases").Increment();
  inflight_erases_.emplace_back(die, block);
  uint64_t gen = generation_;
  simulator_->ScheduleAt(completion, [this, die, block, gen, done = std::move(done)] {
    if (gen != generation_) {
      return;  // power lost mid-erase: the whole block is torn
    }
    inflight_erases_.erase(
        std::find(inflight_erases_.begin(), inflight_erases_.end(), std::make_pair(die, block)));
    Block& b = dies_[die].blocks[block];
    b.pages.assign(geometry_.pages_per_block, PageState::kErased);
    for (auto& page : b.data) {
      page.clear();
    }
    std::fill(b.oob.begin(), b.oob.end(), OobTag{});
    ++b.erase_count;
    done(OkStatus());
  });
}

void NandArray::PowerCut() {
  ++generation_;
  stats_.GetCounter("power_cuts").Increment();
  for (const Ppa& ppa : inflight_programs_) {
    Block& block = dies_[ppa.die].blocks[ppa.block];
    block.pages[ppa.page] = PageState::kTorn;
    block.data[ppa.page].clear();
    block.oob[ppa.page] = OobTag{};
    stats_.GetCounter("torn_pages").Increment();
  }
  inflight_programs_.clear();
  for (const auto& [die, block] : inflight_erases_) {
    // An interrupted erase leaves every cell of the block unstable.
    Block& b = dies_[die].blocks[block];
    std::fill(b.pages.begin(), b.pages.end(), PageState::kTorn);
    for (auto& page : b.data) {
      page.clear();
    }
    std::fill(b.oob.begin(), b.oob.end(), OobTag{});
  }
  inflight_erases_.clear();
  for (auto& die : dies_) {
    die.busy_until = simulator_->Now();
  }
}

NandArray::PageState NandArray::StateOf(Ppa ppa) const {
  LASTCPU_CHECK(CheckAddress(ppa).ok(), "bad page address");
  return dies_[ppa.die].blocks[ppa.block].pages[ppa.page];
}

const OobTag& NandArray::OobOf(Ppa ppa) const {
  LASTCPU_CHECK(CheckAddress(ppa).ok(), "bad page address");
  return dies_[ppa.die].blocks[ppa.block].oob[ppa.page];
}

const std::vector<uint8_t>& NandArray::DataOf(Ppa ppa) const {
  LASTCPU_CHECK(CheckAddress(ppa).ok(), "bad page address");
  return dies_[ppa.die].blocks[ppa.block].data[ppa.page];
}

uint32_t NandArray::EraseCount(uint32_t die, uint32_t block) const {
  LASTCPU_CHECK(die < geometry_.dies && block < geometry_.blocks_per_die, "bad block address");
  return dies_[die].blocks[block].erase_count;
}

uint32_t NandArray::MinEraseCount() const {
  uint32_t best = dies_[0].blocks[0].erase_count;
  for (const auto& die : dies_) {
    for (const auto& block : die.blocks) {
      best = std::min(best, block.erase_count);
    }
  }
  return best;
}

uint32_t NandArray::MaxEraseCount() const {
  uint32_t best = 0;
  for (const auto& die : dies_) {
    for (const auto& block : die.blocks) {
      best = std::max(best, block.erase_count);
    }
  }
  return best;
}

}  // namespace lastcpu::ssddev
