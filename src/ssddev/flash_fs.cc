#include "src/ssddev/flash_fs.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {
namespace {

MetaRecord AclRecord(MetaRecord::Kind kind, uint32_t file_id, const std::string& name,
                     const FileAcl& acl) {
  MetaRecord record;
  record.kind = kind;
  record.file_id = file_id;
  record.name = name;
  record.acl_owner = acl.owner;
  record.acl_readers.assign(acl.readers.begin(), acl.readers.end());
  record.acl_writers.assign(acl.writers.begin(), acl.writers.end());
  return record;
}

FileAcl AclFromRecord(const MetaRecord& record) {
  FileAcl acl;
  acl.owner = record.acl_owner;
  acl.readers.insert(record.acl_readers.begin(), record.acl_readers.end());
  acl.writers.insert(record.acl_writers.begin(), record.acl_writers.end());
  return acl;
}

}  // namespace

FlashFs::FlashFs(Ftl* ftl) : ftl_(ftl) { LASTCPU_CHECK(ftl != nullptr, "filesystem needs an FTL"); }

Status FlashFs::Create(const std::string& name, FileAcl acl) {
  if (name.empty()) {
    return InvalidArgument("empty file name");
  }
  if (files_.contains(name)) {
    return AlreadyExists("file exists: " + name);
  }
  Inode inode;
  inode.id = next_file_id_++;
  inode.acl = acl;
  ftl_->AppendMeta(AclRecord(MetaRecord::Kind::kFsCreate, inode.id, name, acl));
  files_.emplace(name, std::move(inode));
  // Barrier: the file's first data-write ack must imply the create record is
  // durable, or recovery would orphan the acked pages. The per-file queue
  // holds data writes behind this journal sync.
  QueuedWrite barrier;
  barrier.kind = QueuedWrite::Kind::kBarrier;
  EnqueueWrite(name, std::move(barrier));
  return OkStatus();
}

Status FlashFs::Delete(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  std::vector<uint64_t> lpns = std::move(it->second.lpns);
  uint32_t id = it->second.id;
  files_.erase(it);
  for (uint64_t lpn : lpns) {
    ftl_->Trim(lpn);
  }
  MetaRecord record;
  record.kind = MetaRecord::Kind::kFsDelete;
  record.file_id = id;
  ftl_->AppendMeta(std::move(record));
  // Park the lpns until the delete record and trim tombstones are durable:
  // recycling them earlier could hand a not-yet-dead file's pages to a new
  // one. If the sync fails the lpns leak until the next recovery reclaims
  // them — safe, just not reused.
  ftl_->SyncMeta([this, lpns = std::move(lpns)](Status s) mutable {
    if (s.ok()) {
      for (uint64_t lpn : lpns) {
        free_lpns_.push_back(lpn);
      }
    }
  });
  return OkStatus();
}

bool FlashFs::Exists(const std::string& name) const { return files_.contains(name); }

Result<FileInfo> FlashFs::Stat(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  return FileInfo{it->second.size, it->second.lpns.size(), it->second.acl};
}

std::vector<std::string> FlashFs::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, inode] : files_) {
    names.push_back(name);
  }
  return names;
}

Status FlashFs::SetAcl(const std::string& name, FileAcl acl) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  ftl_->AppendMeta(AclRecord(MetaRecord::Kind::kFsAcl, it->second.id, name, acl));
  it->second.acl = std::move(acl);
  return OkStatus();
}

uint64_t FlashFs::free_pages() const {
  uint64_t used = next_lpn_ - free_lpns_.size();
  return ftl_->logical_pages() - used;
}

Result<uint64_t> FlashFs::AllocLpn() {
  if (!free_lpns_.empty()) {
    uint64_t lpn = free_lpns_.front();
    free_lpns_.pop_front();
    return lpn;
  }
  if (next_lpn_ >= ftl_->logical_pages()) {
    return ResourceExhausted("filesystem full");
  }
  return next_lpn_++;
}

Status FlashFs::EnsureCapacity(Inode& inode, uint64_t end) {
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t pages_needed = (end + page_bytes - 1) / page_bytes;
  while (inode.lpns.size() < pages_needed) {
    auto lpn = AllocLpn();
    if (!lpn.ok()) {
      return lpn.status();
    }
    inode.lpns.push_back(*lpn);
  }
  return OkStatus();
}

void FlashFs::Write(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
                    WriteCallback done) {
  LASTCPU_CHECK(done != nullptr, "write without callback");
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  if (data.empty()) {
    done(OkStatus());
    return;
  }
  Inode& inode = it->second;
  Status capacity = EnsureCapacity(inode, offset + data.size());
  if (!capacity.ok()) {
    done(capacity);
    return;
  }
  // Reserve the byte range now so concurrent appends see the new EOF.
  inode.size = std::max(inode.size, offset + data.size());
  QueuedWrite queued;
  queued.kind = QueuedWrite::Kind::kData;
  queued.offset = offset;
  queued.data = std::move(data);
  queued.done = std::move(done);
  EnqueueWrite(name, std::move(queued));
}

void FlashFs::EnqueueWrite(const std::string& name, QueuedWrite queued) {
  write_queues_[name].push_back(std::move(queued));
  if (!write_active_.contains(name)) {
    PumpWrites(name);
  }
}

void FlashFs::PumpWrites(const std::string& name) {
  auto it = write_queues_.find(name);
  if (it == write_queues_.end() || it->second.empty()) {
    if (it != write_queues_.end()) {
      write_queues_.erase(it);
    }
    return;
  }
  QueuedWrite next = std::move(it->second.front());
  it->second.pop_front();
  write_active_.insert(name);
  if (next.kind == QueuedWrite::Kind::kBarrier) {
    ftl_->SyncMeta([this, name](Status) {
      // Even a failed sync releases the queue; the writes behind it will
      // surface their own errors (or succeed un-journaled and be reclaimed
      // as orphans at the next recovery).
      write_active_.erase(name);
      PumpWrites(name);
    });
    return;
  }
  WritePages(name, next.offset, std::move(next.data), 0,
             [this, name, done = std::move(next.done)](Status s) mutable {
               done(s);
               write_active_.erase(name);
               PumpWrites(name);
             });
}

void FlashFs::WritePages(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
                         size_t page_index, WriteCallback done) {
  auto file_it = files_.find(name);
  if (file_it == files_.end()) {
    done(Aborted("file deleted during write"));
    return;
  }
  Inode* inode = &file_it->second;
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (offset + data.size() - 1) / page_bytes;
  if (first_page + page_index > last_page) {
    done(OkStatus());
    return;
  }
  uint64_t page = first_page + page_index;
  uint64_t page_start = page * page_bytes;
  uint64_t slice_begin = std::max(offset, page_start);
  uint64_t slice_end = std::min(offset + data.size(), page_start + page_bytes);
  uint64_t lpn = inode->lpns[page];
  // Journal the file identity with the page, and the file size this page
  // makes durable once it is on media.
  Ftl::FileTag tag{inode->id, static_cast<uint32_t>(page),
                   std::max(inode->durable_size, slice_end)};

  // Move-only callbacks let the remaining data and the continuation transfer
  // straight through the FTL completion — no shared_ptr boxing.
  auto write_page = [this, name, offset, lpn, tag, page_index,
                     slice_begin, slice_end, page_start](std::vector<uint8_t> page_data,
                                                         std::vector<uint8_t> all_data,
                                                         WriteCallback cb) mutable {
    page_data.resize(ftl_->page_bytes(), 0);
    std::memcpy(page_data.data() + (slice_begin - page_start),
                all_data.data() + (slice_begin - offset), slice_end - slice_begin);
    ftl_->Write(lpn, std::move(page_data), tag,
                [this, name, offset, page_index, all = std::move(all_data),
                 next = std::move(cb)](Status s) mutable {
                  if (!s.ok()) {
                    next(s);
                    return;
                  }
                  // This page is durable; advance the acked prefix.
                  auto it = files_.find(name);
                  if (it != files_.end()) {
                    uint64_t pb = ftl_->page_bytes();
                    uint64_t p = offset / pb + page_index;
                    uint64_t durable_end = std::min(offset + all.size(), (p + 1) * pb);
                    it->second.durable_size = std::max(it->second.durable_size, durable_end);
                  }
                  WritePages(name, offset, std::move(all), page_index + 1, std::move(next));
                });
  };

  bool full_page = slice_begin == page_start && slice_end == page_start + page_bytes;
  if (full_page || !ftl_->IsMapped(lpn)) {
    // Fresh or fully-covered page: no read-modify-write needed.
    write_page(std::vector<uint8_t>(), std::move(data), std::move(done));
    return;
  }
  // Partial overwrite of existing data: read-modify-write.
  ftl_->Read(lpn, [write_page = std::move(write_page), data = std::move(data),
                   done = std::move(done)](Result<std::span<const uint8_t>> existing) mutable {
    std::vector<uint8_t> base;
    if (existing.ok()) {
      base.assign(existing->begin(), existing->end());
    }
    write_page(std::move(base), std::move(data), std::move(done));
  });
}

void FlashFs::Append(const std::string& name, std::vector<uint8_t> data,
                     sim::MoveFn<void(Result<uint64_t>), 160> done) {
  LASTCPU_CHECK(done != nullptr, "append without callback");
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  uint64_t offset = it->second.size;
  Write(name, offset, std::move(data), [offset, done = std::move(done)](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    done(offset);
  });
}

void FlashFs::Read(const std::string& name, uint64_t offset, uint64_t length, ReadCallback done) {
  LASTCPU_CHECK(done != nullptr, "read without callback");
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  const Inode& inode = it->second;
  uint64_t end = std::min(offset + length, inode.size);
  if (offset >= end) {
    done(std::vector<uint8_t>());
    return;
  }
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (end - 1) / page_bytes;
  if (first_page == last_page) {
    // Single-page read — the common case for record-sized IO. No assembly
    // buffer, no per-page recursion; the completion re-checks existence so a
    // file deleted mid-read still reports Aborted, exactly like the chain.
    // The capture is sized to the FTL callback's inline budget.
    uint64_t page_start = first_page * page_bytes;
    ftl_->Read(inode.lpns[first_page],
               [this, fname = std::string(name), offset, end, page_start,
                next = std::move(done)](Result<std::span<const uint8_t>> page) mutable {
                 if (!page.ok() && page.status().code() != StatusCode::kNotFound) {
                   // Real media error: surface it. (NotFound = sparse hole.)
                   next(page.status());
                   return;
                 }
                 if (!files_.contains(fname)) {
                   next(Aborted("file deleted during read"));
                   return;
                 }
                 std::vector<uint8_t> out(end - offset, 0);
                 if (page.ok()) {
                   std::span<const uint8_t> bytes = *page;
                   uint64_t src_off = offset - page_start;
                   if (src_off < bytes.size()) {
                     uint64_t n = std::min<uint64_t>(out.size(), bytes.size() - src_off);
                     std::memcpy(out.data(), bytes.data() + src_off, n);
                   }
                 }
                 next(std::move(out));
               });
    return;
  }
  auto out = std::make_shared<std::vector<uint8_t>>(end - offset, 0);
  ReadPages(name, offset, end - offset, out, 0, std::move(done));
}

void FlashFs::ReadPages(const std::string& name, uint64_t offset, uint64_t length,
                        std::shared_ptr<std::vector<uint8_t>> out, size_t page_index,
                        ReadCallback done) {
  auto file_it = files_.find(name);
  if (file_it == files_.end()) {
    done(Aborted("file deleted during read"));
    return;
  }
  const Inode* inode = &file_it->second;
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (offset + length - 1) / page_bytes;
  if (first_page + page_index > last_page) {
    done(std::move(*out));
    return;
  }
  uint64_t page = first_page + page_index;
  uint64_t page_start = page * page_bytes;
  uint64_t slice_begin = std::max(offset, page_start);
  uint64_t slice_end = std::min(offset + length, page_start + page_bytes);
  uint64_t lpn = inode->lpns[page];
  ftl_->Read(lpn, [this, name, offset, length, out, page_index, next = std::move(done),
                   slice_begin, slice_end,
                   page_start](Result<std::span<const uint8_t>> page_data) mutable {
    if (page_data.ok()) {
      std::span<const uint8_t> bytes = *page_data;
      uint64_t copy_len = slice_end - slice_begin;
      uint64_t src_off = slice_begin - page_start;
      if (src_off < bytes.size()) {
        copy_len = std::min(copy_len, bytes.size() - src_off);
        std::memcpy(out->data() + (slice_begin - offset), bytes.data() + src_off, copy_len);
      }
    } else if (page_data.status().code() != StatusCode::kNotFound) {
      // Real media error: surface it. (NotFound = sparse hole, reads as 0s.)
      next(page_data.status());
      return;
    }
    ReadPages(name, offset, length, out, page_index + 1, std::move(next));
  });
}

void FlashFs::PowerCut() {
  Status why = Unavailable("ssd power loss");
  std::map<std::string, std::deque<QueuedWrite>> queues = std::move(write_queues_);
  write_queues_.clear();
  for (auto& [name, queue] : queues) {
    for (QueuedWrite& w : queue) {
      if (w.done != nullptr) {
        w.done(why);
      }
    }
  }
  write_active_.clear();
  files_.clear();
  free_lpns_.clear();
  next_lpn_ = 0;
  next_file_id_ = 1;
}

void FlashFs::Recover() {
  files_.clear();
  free_lpns_.clear();
  next_lpn_ = 0;

  // Replay the journal's file records in sequence order (Ftl::Recover sorted
  // them) into per-id state.
  struct FileRec {
    std::string name;
    FileAcl acl;
    bool alive = false;
    uint64_t created_seq = 0;
    uint64_t size = 0;
    std::map<uint32_t, std::pair<uint64_t, uint64_t>> pages;  // file_page -> (lpn, seq)
  };
  std::map<uint32_t, FileRec> by_id;
  for (const MetaRecord& record : ftl_->recovered_meta()) {
    switch (record.kind) {
      case MetaRecord::Kind::kTrim:
        break;  // already applied by Ftl::Recover
      case MetaRecord::Kind::kFsCreate: {
        FileRec& rec = by_id[record.file_id];
        rec.name = record.name;
        rec.acl = AclFromRecord(record);
        rec.alive = true;
        rec.created_seq = record.seq;
        break;
      }
      case MetaRecord::Kind::kFsDelete:
        by_id[record.file_id].alive = false;
        break;
      case MetaRecord::Kind::kFsAcl: {
        auto it = by_id.find(record.file_id);
        if (it != by_id.end()) {
          it->second.acl = AclFromRecord(record);
        }
        break;
      }
    }
  }

  // A name may be claimed by several live records if a delete record was
  // lost with the rail; the newest creation wins and the loser's pages are
  // reclaimed as orphans.
  std::map<std::string, uint32_t> name_winner;
  for (const auto& [id, rec] : by_id) {
    if (!rec.alive) {
      continue;
    }
    auto [it, inserted] = name_winner.emplace(rec.name, id);
    if (!inserted && by_id[it->second].created_seq < rec.created_seq) {
      by_id[it->second].alive = false;
      it->second = id;
    } else if (!inserted) {
      by_id[id].alive = false;
    }
  }

  // Attach the surviving data pages; orphans go back to the FTL.
  std::vector<uint64_t> orphan_lpns;
  for (const RecoveredFilePage& page : ftl_->recovered_file_pages()) {
    auto it = by_id.find(page.file_id);
    if (it == by_id.end() || !it->second.alive) {
      orphan_lpns.push_back(page.lpn);
      continue;
    }
    FileRec& rec = it->second;
    auto [pit, inserted] = rec.pages.emplace(page.file_page, std::make_pair(page.lpn, page.seq));
    if (!inserted && pit->second.second < page.seq) {
      pit->second = {page.lpn, page.seq};
    }
    rec.size = std::max(rec.size, page.size_after);
  }
  for (uint64_t lpn : orphan_lpns) {
    ftl_->Trim(lpn);
  }

  // Build inodes (ascending id: deterministic), find the lpn high-water
  // mark, then fill sparse holes and the free pool from the unused range.
  uint64_t max_used_lpn = 0;
  bool any_used = false;
  std::set<uint64_t> used_lpns;
  for (const auto& [id, rec] : by_id) {
    if (!rec.alive) {
      continue;
    }
    for (const auto& [file_page, lpn_seq] : rec.pages) {
      used_lpns.insert(lpn_seq.first);
      max_used_lpn = std::max(max_used_lpn, lpn_seq.first);
      any_used = true;
    }
  }
  next_lpn_ = any_used ? max_used_lpn + 1 : 0;
  std::deque<uint64_t> unused;
  for (uint64_t lpn = 0; lpn < next_lpn_; ++lpn) {
    if (!used_lpns.contains(lpn)) {
      unused.push_back(lpn);
    }
  }
  uint32_t max_id = 0;
  for (const auto& [id, rec] : by_id) {
    max_id = std::max(max_id, id);
    if (!rec.alive) {
      continue;
    }
    Inode inode;
    inode.id = id;
    inode.acl = rec.acl;
    inode.size = rec.size;
    inode.durable_size = rec.size;
    uint64_t page_bytes = ftl_->page_bytes();
    uint64_t npages = (rec.size + page_bytes - 1) / page_bytes;
    if (!rec.pages.empty()) {
      npages = std::max<uint64_t>(npages, rec.pages.rbegin()->first + 1);
    }
    for (uint64_t p = 0; p < npages; ++p) {
      auto pit = rec.pages.find(static_cast<uint32_t>(p));
      if (pit != rec.pages.end()) {
        inode.lpns.push_back(pit->second.first);
      } else if (!unused.empty()) {
        // A hole (page never durably written, or its lpn trimmed): back it
        // with a fresh unmapped lpn so it reads as zeros.
        inode.lpns.push_back(unused.front());
        unused.pop_front();
      } else {
        inode.lpns.push_back(next_lpn_++);
      }
    }
    files_.emplace(rec.name, std::move(inode));
  }
  free_lpns_ = std::move(unused);
  next_file_id_ = max_id + 1;
}

}  // namespace lastcpu::ssddev
