#include "src/ssddev/flash_fs.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {

FlashFs::FlashFs(Ftl* ftl) : ftl_(ftl) { LASTCPU_CHECK(ftl != nullptr, "filesystem needs an FTL"); }

Status FlashFs::Create(const std::string& name, FileAcl acl) {
  if (name.empty()) {
    return InvalidArgument("empty file name");
  }
  if (files_.contains(name)) {
    return AlreadyExists("file exists: " + name);
  }
  Inode inode;
  inode.acl = std::move(acl);
  files_.emplace(name, std::move(inode));
  return OkStatus();
}

Status FlashFs::Delete(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  for (uint64_t lpn : it->second.lpns) {
    ftl_->Trim(lpn);
    free_lpns_.push_back(lpn);
  }
  files_.erase(it);
  return OkStatus();
}

bool FlashFs::Exists(const std::string& name) const { return files_.contains(name); }

Result<FileInfo> FlashFs::Stat(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  return FileInfo{it->second.size, it->second.lpns.size(), it->second.acl};
}

std::vector<std::string> FlashFs::List() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, inode] : files_) {
    names.push_back(name);
  }
  return names;
}

Status FlashFs::SetAcl(const std::string& name, FileAcl acl) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return NotFound("no such file: " + name);
  }
  it->second.acl = std::move(acl);
  return OkStatus();
}

uint64_t FlashFs::free_pages() const {
  uint64_t used = next_lpn_ - free_lpns_.size();
  return ftl_->logical_pages() - used;
}

Result<uint64_t> FlashFs::AllocLpn() {
  if (!free_lpns_.empty()) {
    uint64_t lpn = free_lpns_.front();
    free_lpns_.pop_front();
    return lpn;
  }
  if (next_lpn_ >= ftl_->logical_pages()) {
    return ResourceExhausted("filesystem full");
  }
  return next_lpn_++;
}

Status FlashFs::EnsureCapacity(Inode& inode, uint64_t end) {
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t pages_needed = (end + page_bytes - 1) / page_bytes;
  while (inode.lpns.size() < pages_needed) {
    auto lpn = AllocLpn();
    if (!lpn.ok()) {
      return lpn.status();
    }
    inode.lpns.push_back(*lpn);
  }
  return OkStatus();
}

void FlashFs::Write(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
                    WriteCallback done) {
  LASTCPU_CHECK(done != nullptr, "write without callback");
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  if (data.empty()) {
    done(OkStatus());
    return;
  }
  Inode& inode = it->second;
  Status capacity = EnsureCapacity(inode, offset + data.size());
  if (!capacity.ok()) {
    done(capacity);
    return;
  }
  // Reserve the byte range now so concurrent appends see the new EOF.
  inode.size = std::max(inode.size, offset + data.size());
  // Serialize the page writes per file (lost-update protection), completing
  // the caller when this write's turn finishes.
  EnqueueWrite(name, [this, name, offset, data = std::move(data),
                      done = std::move(done)]() mutable {
    WritePages(name, offset, std::move(data), 0,
               [this, name, done = std::move(done)](Status s) mutable {
                 done(s);
                 write_active_.erase(name);
                 PumpWrites(name);
               });
  });
}

void FlashFs::EnqueueWrite(const std::string& name, sim::MoveFn<void(), 160> thunk) {
  write_queues_[name].push_back(std::move(thunk));
  if (!write_active_.contains(name)) {
    PumpWrites(name);
  }
}

void FlashFs::PumpWrites(const std::string& name) {
  auto it = write_queues_.find(name);
  if (it == write_queues_.end() || it->second.empty()) {
    if (it != write_queues_.end()) {
      write_queues_.erase(it);
    }
    return;
  }
  auto thunk = std::move(it->second.front());
  it->second.pop_front();
  write_active_.insert(name);
  thunk();
}

void FlashFs::WritePages(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
                         size_t page_index, WriteCallback done) {
  auto file_it = files_.find(name);
  if (file_it == files_.end()) {
    done(Aborted("file deleted during write"));
    return;
  }
  Inode* inode = &file_it->second;
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (offset + data.size() - 1) / page_bytes;
  if (first_page + page_index > last_page) {
    done(OkStatus());
    return;
  }
  uint64_t page = first_page + page_index;
  uint64_t page_start = page * page_bytes;
  uint64_t slice_begin = std::max(offset, page_start);
  uint64_t slice_end = std::min(offset + data.size(), page_start + page_bytes);
  uint64_t lpn = inode->lpns[page];

  // Move-only callbacks let the remaining data and the continuation transfer
  // straight through the FTL completion — no shared_ptr boxing.
  auto write_page = [this, name, offset, lpn, page_index,
                     slice_begin, slice_end, page_start](std::vector<uint8_t> page_data,
                                                         std::vector<uint8_t> all_data,
                                                         WriteCallback cb) mutable {
    page_data.resize(ftl_->page_bytes(), 0);
    std::memcpy(page_data.data() + (slice_begin - page_start),
                all_data.data() + (slice_begin - offset), slice_end - slice_begin);
    ftl_->Write(lpn, std::move(page_data),
                [this, name, offset, page_index, all = std::move(all_data),
                 next = std::move(cb)](Status s) mutable {
                  if (!s.ok()) {
                    next(s);
                    return;
                  }
                  WritePages(name, offset, std::move(all), page_index + 1, std::move(next));
                });
  };

  bool full_page = slice_begin == page_start && slice_end == page_start + page_bytes;
  if (full_page || !ftl_->IsMapped(lpn)) {
    // Fresh or fully-covered page: no read-modify-write needed.
    write_page(std::vector<uint8_t>(), std::move(data), std::move(done));
    return;
  }
  // Partial overwrite of existing data: read-modify-write.
  ftl_->Read(lpn, [write_page = std::move(write_page), data = std::move(data),
                   done = std::move(done)](Result<std::span<const uint8_t>> existing) mutable {
    std::vector<uint8_t> base;
    if (existing.ok()) {
      base.assign(existing->begin(), existing->end());
    }
    write_page(std::move(base), std::move(data), std::move(done));
  });
}

void FlashFs::Append(const std::string& name, std::vector<uint8_t> data,
                     sim::MoveFn<void(Result<uint64_t>), 160> done) {
  LASTCPU_CHECK(done != nullptr, "append without callback");
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  uint64_t offset = it->second.size;
  Write(name, offset, std::move(data), [offset, done = std::move(done)](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    done(offset);
  });
}

void FlashFs::Read(const std::string& name, uint64_t offset, uint64_t length, ReadCallback done) {
  LASTCPU_CHECK(done != nullptr, "read without callback");
  auto it = files_.find(name);
  if (it == files_.end()) {
    done(NotFound("no such file: " + name));
    return;
  }
  const Inode& inode = it->second;
  uint64_t end = std::min(offset + length, inode.size);
  if (offset >= end) {
    done(std::vector<uint8_t>());
    return;
  }
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (end - 1) / page_bytes;
  if (first_page == last_page) {
    // Single-page read — the common case for record-sized IO. No assembly
    // buffer, no per-page recursion; the completion re-checks existence so a
    // file deleted mid-read still reports Aborted, exactly like the chain.
    // The capture is sized to the FTL callback's inline budget.
    uint64_t page_start = first_page * page_bytes;
    ftl_->Read(inode.lpns[first_page],
               [this, fname = std::string(name), offset, end, page_start,
                next = std::move(done)](Result<std::span<const uint8_t>> page) mutable {
                 if (!page.ok() && page.status().code() != StatusCode::kNotFound) {
                   // Real media error: surface it. (NotFound = sparse hole.)
                   next(page.status());
                   return;
                 }
                 if (!files_.contains(fname)) {
                   next(Aborted("file deleted during read"));
                   return;
                 }
                 std::vector<uint8_t> out(end - offset, 0);
                 if (page.ok()) {
                   std::span<const uint8_t> bytes = *page;
                   uint64_t src_off = offset - page_start;
                   if (src_off < bytes.size()) {
                     uint64_t n = std::min<uint64_t>(out.size(), bytes.size() - src_off);
                     std::memcpy(out.data(), bytes.data() + src_off, n);
                   }
                 }
                 next(std::move(out));
               });
    return;
  }
  auto out = std::make_shared<std::vector<uint8_t>>(end - offset, 0);
  ReadPages(name, offset, end - offset, out, 0, std::move(done));
}

void FlashFs::ReadPages(const std::string& name, uint64_t offset, uint64_t length,
                        std::shared_ptr<std::vector<uint8_t>> out, size_t page_index,
                        ReadCallback done) {
  auto file_it = files_.find(name);
  if (file_it == files_.end()) {
    done(Aborted("file deleted during read"));
    return;
  }
  const Inode* inode = &file_it->second;
  uint64_t page_bytes = ftl_->page_bytes();
  uint64_t first_page = offset / page_bytes;
  uint64_t last_page = (offset + length - 1) / page_bytes;
  if (first_page + page_index > last_page) {
    done(std::move(*out));
    return;
  }
  uint64_t page = first_page + page_index;
  uint64_t page_start = page * page_bytes;
  uint64_t slice_begin = std::max(offset, page_start);
  uint64_t slice_end = std::min(offset + length, page_start + page_bytes);
  uint64_t lpn = inode->lpns[page];
  ftl_->Read(lpn, [this, name, offset, length, out, page_index, next = std::move(done),
                   slice_begin, slice_end,
                   page_start](Result<std::span<const uint8_t>> page_data) mutable {
    if (page_data.ok()) {
      std::span<const uint8_t> bytes = *page_data;
      uint64_t copy_len = slice_end - slice_begin;
      uint64_t src_off = slice_begin - page_start;
      if (src_off < bytes.size()) {
        copy_len = std::min(copy_len, bytes.size() - src_off);
        std::memcpy(out->data() + (slice_begin - offset), bytes.data() + src_off, copy_len);
      }
    } else if (page_data.status().code() != StatusCode::kNotFound) {
      // Real media error: surface it. (NotFound = sparse hole, reads as 0s.)
      next(page_data.status());
      return;
    }
    ReadPages(name, offset, length, out, page_index + 1, std::move(next));
  });
}

}  // namespace lastcpu::ssddev
