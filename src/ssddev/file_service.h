// The file service a smart SSD exposes over VIRTIO queues.
//
// Session bring-up mirrors Figure 2: discover(file) -> open(token) ->
// [client allocates + grants shared memory] -> attach-queue -> virtqueue I/O
// with doorbell notifications. Each instance is an isolated context: its own
// file handle, resolved user identity, queue, and in-flight state.
#ifndef SRC_SSDDEV_FILE_SERVICE_H_
#define SRC_SSDDEV_FILE_SERVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/auth/auth_service.h"
#include "src/dev/device.h"
#include "src/fabric/fabric.h"
#include "src/dev/service.h"
#include "src/ssddev/file_protocol.h"
#include "src/ssddev/flash_fs.h"
#include "src/virtio/virtqueue.h"

namespace lastcpu::ssddev {

struct FileServiceConfig {
  uint16_t queue_depth = 64;
  // Firmware cost to parse + dispatch one request on the embedded core.
  sim::Duration request_cost = sim::Duration::Micros(2);
  // Concurrent chains the firmware keeps in flight per session (commands
  // outstanding against the FTL; exploits NAND die parallelism).
  uint32_t max_in_flight = 32;
  // Completion-batching window (the data-plane fast path). Zero (the
  // default) writes each response and rings the client as it completes,
  // byte-identical to the unbatched model. With a window, completions inside
  // it are staged and flushed as ONE scatter-gather DmaWritev of every
  // response slot plus ONE doorbell per session.
  sim::Duration completion_batch_window = sim::Duration::Zero();
};

class FileService : public dev::Service {
 public:
  // `auth` may be null (no access control; bring-up and benchmarks).
  FileService(dev::Device* host, FlashFs* fs, auth::AuthService* auth,
              FileServiceConfig config = {});

  // Matches file queries when the named file exists here (Fig. 2 step 2).
  bool Matches(const proto::DiscoverRequest& query) const override;

  // Validates the token's read access to the file and creates the session.
  Result<proto::OpenResponse> Open(DeviceId client, const proto::OpenRequest& request) override;

  // Single-exchange file administration: FileCreate (token's user becomes
  // owner) and FileDelete (owner-only under access control).
  std::optional<Result<proto::Payload>> HandleMessage(const proto::Message& message) override;

  // Binds the session's shared-memory queue (AttachQueue message).
  Status AttachQueue(InstanceId instance, VirtAddr base);

  // Doorbell from the client: drain the session's avail ring.
  void OnDoorbell(InstanceId instance);

  // Fails one session's resource (Sec. 4 fault injection): consumers get a
  // ResourceFailed message and the instance resets.
  void InjectResourceFailure(InstanceId instance, const std::string& reason);

  // The power rail drops: every session (queue state, staged completions,
  // in-flight chains) vanishes without a goodbye message — clients learn via
  // the supervisor's failure notice, exactly like a real dead drive.
  void PowerCut();

  uint64_t requests_served() const { return requests_served_; }

 protected:
  void OnInstanceClosed(const dev::ServiceInstance& instance) override;

 private:
  // One response staged for the next completion-batch flush.
  struct StagedCompletion {
    uint16_t head = 0;
    std::vector<uint8_t> wire;
    VirtAddr response_slot;
  };

  struct Session {
    std::string file;
    std::string user;
    Pasid pasid;
    DeviceId client;
    std::optional<SessionLayout> layout;
    std::unique_ptr<virtio::VirtqueueDevice> queue;
    uint32_t in_flight = 0;
    bool drain_scheduled = false;
    std::vector<StagedCompletion> staged;
    bool completion_flush_scheduled = false;
  };

  // Re-arms the drain loop for a session unless one is already pending.
  void ScheduleDrain(InstanceId instance);

  // Pulls and serves the next request of a session; re-arms itself until the
  // ring is empty.
  void DrainSession(InstanceId instance);
  void ServeChain(InstanceId instance, virtio::Chain chain);
  void CompleteChain(InstanceId instance, uint16_t head, const FileResponseHeader& header,
                     std::vector<uint8_t> payload, VirtAddr response_slot);
  // Flushes every staged completion of a session: one DmaWritev, then each
  // used-ring push, then one doorbell.
  void FlushCompletions(InstanceId instance);

  Session* FindSession(InstanceId instance);

  dev::Device* host_;
  FlashFs* fs_;
  auth::AuthService* auth_;
  FileServiceConfig config_;
  // Per-request counter resolved once from the host's registry (declared
  // after host_, so the reference is valid at construction).
  sim::Counter& file_requests_ = host_->stats().GetCounter("file_requests");
  std::map<InstanceId, Session> sessions_;
  std::unique_ptr<fabric::DoorbellBatcher> bells_;
  uint64_t requests_served_ = 0;
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_FILE_SERVICE_H_
