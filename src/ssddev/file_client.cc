#include "src/ssddev/file_client.h"

#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {

FileClient::FileClient(dev::Device* host, Pasid pasid, FileClientConfig config)
    : host_(host), pasid_(pasid), config_(config) {
  LASTCPU_CHECK(host != nullptr, "file client needs a host device");
  if (host_->fabric() != nullptr) {
    bells_ = std::make_unique<fabric::DoorbellBatcher>(host_->fabric(), host_->id());
  }
  // The RPC layer aborts control transactions to a failed peer on its own;
  // this hook extends the same guarantee to the virtqueue data plane.
  peer_failed_hook_ = host_->AddPeerFailedHook([this](DeviceId device) {
    if (device == provider_ && provider_.valid()) {
      Reset(Unavailable("file provider " + std::to_string(device.value()) + " failed"));
    }
  });
  permanent_failed_hook_ = host_->AddPeerPermanentlyFailedHook([this](DeviceId device) {
    if (device == provider_ && provider_.valid()) {
      Reset(Unavailable("file provider " + std::to_string(device.value()) +
                        " permanently failed"));
    }
  });
}

FileClient::~FileClient() {
  host_->RemovePeerFailedHook(peer_failed_hook_);
  host_->RemovePeerPermanentlyFailedHook(permanent_failed_hook_);
}

void FileClient::Open(const std::string& file, uint64_t auth_token, OpenCallback done) {
  LASTCPU_CHECK(done != nullptr, "open without callback");
  LASTCPU_CHECK(queue_ == nullptr, "session already open");
  auto done_ptr = std::make_shared<OpenCallback>(std::move(done));

  // Step 1 (Fig. 2): broadcast — who owns this file?
  host_->rpc().Discover(
      proto::ServiceType::kFile, file, config_.discover_window,
      [this, file, auth_token, done_ptr](std::vector<proto::ServiceDescriptor> services) {
        if (services.empty()) {
          (*done_ptr)(NotFound("no file service owns " + file));
          return;
        }
        provider_ = services[0].provider;
        const std::string service_name = services[0].name;

        // Locate the memory controller too (usually cached by real firmware).
        host_->rpc().Discover(
            proto::ServiceType::kMemory, "", config_.discover_window,
            [this, file, auth_token, service_name, done_ptr](
                std::vector<proto::ServiceDescriptor> memory_services) {
              if (memory_services.empty()) {
                (*done_ptr)(Unavailable("no memory controller on the bus"));
                return;
              }
              memctrl_ = memory_services[0].provider;

              // Step 3: open the service instance with the auth token.
              host_->rpc().Call<proto::OpenResponse>(
                  provider_, proto::OpenRequest{service_name, file, auth_token, pasid_},
                  [this, done_ptr](Result<proto::OpenResponse> open) {
                    if (!open.ok()) {
                      (*done_ptr)(open.status());
                      return;
                    }
                    instance_ = open->instance;
                    session_bytes_ = open->shared_bytes_required;
                    depth_ = open->queue_depth;

                    // Step 5: allocate the shared session memory.
                    host_->rpc().Call<proto::MemAllocResponse>(
                        memctrl_,
                        proto::MemAllocRequest{pasid_, session_bytes_, VirtAddr(0),
                                               Access::kReadWrite},
                        [this, done_ptr](Result<proto::MemAllocResponse> alloc) {
                          if (!alloc.ok()) {
                            (*done_ptr)(alloc.status());
                            return;
                          }
                          session_base_ = alloc->vaddr;

                          // Step 7: grant the region to the provider.
                          host_->rpc().Call<void>(
                              kBusDevice,
                              proto::GrantRequest{pasid_, session_base_, session_bytes_,
                                                  provider_, Access::kReadWrite},
                              [this, done_ptr](Result<void> granted) {
                                if (!granted.ok()) {
                                  (*done_ptr)(granted.status());
                                  return;
                                }
                                // Final step: hand the queue location to the
                                // provider, then initialize our end.
                                host_->rpc().Call<void>(
                                    provider_, proto::AttachQueue{instance_, session_base_},
                                    [this, done_ptr](Result<void> attached) {
                                      if (!attached.ok()) {
                                        (*done_ptr)(attached.status());
                                        return;
                                      }
                                      layout_.emplace(session_base_, depth_);
                                      queue_ = std::make_unique<virtio::VirtqueueDriver>(
                                          host_->fabric(), host_->id(), pasid_, session_base_,
                                          depth_);
                                      Status init = queue_->Initialize();
                                      if (!init.ok()) {
                                        queue_.reset();
                                        (*done_ptr)(init);
                                        return;
                                      }
                                      free_slots_.clear();
                                      for (uint16_t s = depth_ / 2; s > 0; --s) {
                                        free_slots_.push_back(static_cast<uint16_t>(s - 1));
                                      }
                                      StartCompletionPoll();
                                      (*done_ptr)(OkStatus());
                                    });
                              });
                        });
                  });
            });
      });
}

void FileClient::StartCompletionPoll() {
  if (config_.completion_poll <= sim::Duration::Zero()) {
    return;
  }
  // Assigning cancels any poll left over from a previous session.
  poll_ = sim::ScopedEvent(
      host_->simulator(),
      host_->simulator()->SchedulePeriodic(config_.completion_poll, [this] {
        if (queue_ != nullptr && in_flight_count_ > 0) {
          DrainCompletions();
        }
      }));
}

void FileClient::Issue(FileRequestHeader header, std::vector<uint8_t> payload, Pending pending) {
  if (queue_ == nullptr) {
    Fail(pending, FailedPrecondition("session not open"));
    return;
  }
  if (free_slots_.empty()) {
    Fail(pending, ResourceExhausted("all request slots in flight"));
    return;
  }
  uint16_t slot = free_slots_.back();
  free_slots_.pop_back();
  pending.slot = slot;

  std::vector<uint8_t> wire(FileRequestHeader::kWireBytes + payload.size());
  header.EncodeTo(wire);
  std::copy(payload.begin(), payload.end(), wire.begin() + FileRequestHeader::kWireBytes);
  VirtAddr request_slot = layout_->RequestSlot(slot);
  VirtAddr response_slot = layout_->ResponseSlot(slot);
  uint32_t request_len = static_cast<uint32_t>(wire.size());

  if (config_.submit_batch_window > sim::Duration::Zero()) {
    // Fast path: stage the request (the slot is already claimed, so the
    // backpressure contract is unchanged) and flush the whole batch in one
    // scatter-gather DMA + one doorbell at window close.
    Staged staged;
    staged.slot = slot;
    staged.wire = std::move(wire);
    staged.request_slot = request_slot;
    staged.response_slot = response_slot;
    staged.request_len = request_len;
    staged.pending = std::move(pending);
    staged_.push_back(std::move(staged));
    if (!flush_.armed()) {
      flush_ = sim::ScopedEvent(
          host_->simulator(),
          host_->simulator()->Schedule(config_.submit_batch_window, [this] { FlushBatch(); }));
    }
    return;
  }

  host_->fabric()->DmaWrite(
      host_->id(), pasid_, request_slot, std::move(wire),
      [this, slot, request_slot, response_slot, request_len,
       pending = std::move(pending)](Status wrote) mutable {
        if (queue_ == nullptr) {
          // The session was reset (provider died) while the request DMA was
          // in flight; the slot pool was rebuilt, so do not return the slot.
          Fail(pending, reset_reason_);
          return;
        }
        if (!wrote.ok()) {
          ReleaseSlot(slot);
          Fail(pending, wrote);
          return;
        }
        auto head = queue_->Submit(
            {virtio::BufferDesc{request_slot, request_len, false},
             virtio::BufferDesc{response_slot, static_cast<uint32_t>(kResponseSlotBytes), true}});
        if (!head.ok()) {
          ReleaseSlot(slot);
          Fail(pending, head.status());
          return;
        }
        if (*head >= in_flight_.size()) {
          in_flight_.resize(*head + 1);
        }
        in_flight_[*head] = std::move(pending);
        ++in_flight_count_;
        requests_.Increment();
        bells_->Ring(provider_, instance_.value());
      });
}

void FileClient::FlushBatch() {
  flush_.Release();  // this is the flush event firing; nothing left to cancel
  std::vector<Staged> batch = std::move(staged_);
  staged_.clear();
  if (batch.empty()) {
    return;
  }
  if (queue_ == nullptr) {
    // The session was reset while requests were staged; the slot pool was
    // rebuilt, so do not return the slots.
    for (auto& staged : batch) {
      Fail(staged.pending, reset_reason_);
    }
    return;
  }
  std::vector<fabric::DmaWriteSegment> segments;
  segments.reserve(batch.size());
  for (auto& staged : batch) {
    segments.push_back(fabric::DmaWriteSegment{staged.request_slot, std::move(staged.wire)});
  }
  host_->stats().GetCounter("file_client_batch_flushes").Increment();
  host_->fabric()->DmaWritev(
      host_->id(), pasid_, std::move(segments),
      [this, batch = std::move(batch)](Status wrote) mutable {
        if (queue_ == nullptr) {
          for (auto& staged : batch) {
            Fail(staged.pending, reset_reason_);
          }
          return;
        }
        if (!wrote.ok()) {
          for (auto& staged : batch) {
            ReleaseSlot(staged.slot);
            Fail(staged.pending, wrote);
          }
          return;
        }
        bool submitted = false;
        for (auto& staged : batch) {
          auto head = queue_->Submit(
              {virtio::BufferDesc{staged.request_slot, staged.request_len, false},
               virtio::BufferDesc{staged.response_slot, static_cast<uint32_t>(kResponseSlotBytes),
                                  true}});
          if (!head.ok()) {
            ReleaseSlot(staged.slot);
            Fail(staged.pending, head.status());
            continue;
          }
          if (*head >= in_flight_.size()) {
            in_flight_.resize(*head + 1);
          }
          in_flight_[*head] = std::move(staged.pending);
          ++in_flight_count_;
          requests_.Increment();
          submitted = true;
        }
        if (submitted) {
          bells_->Ring(provider_, instance_.value());
        }
      });
}

void FileClient::ReadAt(uint64_t offset, uint32_t length, ReadCallback done) {
  LASTCPU_CHECK(done != nullptr, "read without callback");
  Pending pending;
  pending.op = FileOp::kRead;
  pending.on_read = std::move(done);
  Issue(FileRequestHeader{FileOp::kRead, offset, length}, {}, std::move(pending));
}

void FileClient::WriteAt(uint64_t offset, std::vector<uint8_t> data, WriteCallback done) {
  LASTCPU_CHECK(done != nullptr, "write without callback");
  if (data.size() > kMaxWriteBytes) {
    done(InvalidArgument("write exceeds per-request limit"));
    return;
  }
  Pending pending;
  pending.op = FileOp::kWrite;
  pending.on_write = std::move(done);
  FileRequestHeader header{FileOp::kWrite, offset, static_cast<uint32_t>(data.size())};
  Issue(header, std::move(data), std::move(pending));
}

void FileClient::Append(std::vector<uint8_t> data, AppendCallback done) {
  LASTCPU_CHECK(done != nullptr, "append without callback");
  if (data.size() > kMaxWriteBytes) {
    done(InvalidArgument("append exceeds per-request limit"));
    return;
  }
  Pending pending;
  pending.op = FileOp::kAppend;
  pending.on_append = std::move(done);
  FileRequestHeader header{FileOp::kAppend, 0, static_cast<uint32_t>(data.size())};
  Issue(header, std::move(data), std::move(pending));
}

void FileClient::Stat(StatCallback done) {
  LASTCPU_CHECK(done != nullptr, "stat without callback");
  Pending pending;
  pending.op = FileOp::kStat;
  pending.on_stat = std::move(done);
  Issue(FileRequestHeader{FileOp::kStat, 0, 0}, {}, std::move(pending));
}

uint64_t FileClient::doorbells_coalesced() const {
  return bells_ != nullptr ? bells_->coalesced() : 0;
}

bool FileClient::HandleDoorbell(DeviceId from, uint64_t value) {
  if (from != provider_ || value != instance_.value() || queue_ == nullptr) {
    return false;
  }
  DrainCompletions();
  return true;
}

void FileClient::DrainCompletions() {
  for (;;) {
    auto used = queue_->PollUsed();
    if (!used.ok() || !used->has_value()) {
      return;
    }
    uint16_t head = (*used)->head;
    if (head >= in_flight_.size() || !in_flight_[head].has_value()) {
      host_->stats().GetCounter("orphan_completions").Increment();
      continue;
    }
    Pending pending = std::move(*in_flight_[head]);
    in_flight_[head].reset();
    --in_flight_count_;
    CompleteOne(head, std::move(pending));
  }
}

void FileClient::CompleteOne(uint16_t head, Pending pending) {
  (void)head;
  uint16_t slot = pending.slot;
  VirtAddr response_slot = layout_->ResponseSlot(slot);
  uint8_t header_bytes[FileResponseHeader::kWireBytes];
  fabric::AccessResult read =
      host_->fabric()->MemRead(host_->id(), pasid_, response_slot, header_bytes);
  if (!read.status.ok()) {
    ReleaseSlot(slot);
    Fail(pending, read.status);
    return;
  }
  auto header = FileResponseHeader::DecodeFrom(header_bytes);
  if (!header.ok()) {
    ReleaseSlot(slot);
    Fail(pending, header.status());
    return;
  }
  if (header->status != StatusCode::kOk) {
    ReleaseSlot(slot);
    Fail(pending, Status(header->status, "file service error"));
    return;
  }
  switch (pending.op) {
    case FileOp::kRead: {
      if (header->length == 0) {
        ReleaseSlot(slot);
        pending.on_read(std::vector<uint8_t>());
        return;
      }
      host_->fabric()->DmaRead(
          host_->id(), pasid_, response_slot + FileResponseHeader::kWireBytes, header->length,
          [this, slot, pending = std::move(pending)](Result<std::vector<uint8_t>> data) mutable {
            ReleaseSlot(slot);
            pending.on_read(std::move(data));
          });
      return;
    }
    case FileOp::kWrite:
      ReleaseSlot(slot);
      pending.on_write(OkStatus());
      return;
    case FileOp::kAppend:
      ReleaseSlot(slot);
      pending.on_append(header->file_size);
      return;
    case FileOp::kStat:
      ReleaseSlot(slot);
      pending.on_stat(header->file_size);
      return;
  }
}

void FileClient::ReleaseSlot(uint16_t slot) {
  free_slots_.push_back(slot);
  if (on_slot_available_) {
    on_slot_available_();
  }
}

void FileClient::Fail(Pending& pending, Status status) {
  host_->stats().GetCounter("file_client_failures").Increment();
  switch (pending.op) {
    case FileOp::kRead:
      pending.on_read(status);
      return;
    case FileOp::kWrite:
      pending.on_write(status);
      return;
    case FileOp::kAppend:
      pending.on_append(status);
      return;
    case FileOp::kStat:
      pending.on_stat(status);
      return;
  }
}

void FileClient::AbortAll(Status reason) {
  flush_.Cancel();
  auto staged = std::move(staged_);
  staged_.clear();
  for (auto& s : staged) {
    free_slots_.push_back(s.slot);
    Fail(s.pending, reason);
  }
  auto doomed = std::move(in_flight_);
  in_flight_.clear();
  in_flight_count_ = 0;
  for (auto& pending : doomed) {
    if (!pending.has_value()) {
      continue;
    }
    free_slots_.push_back(pending->slot);
    Fail(*pending, reason);
  }
}

void FileClient::Reset(Status reason) {
  reset_reason_ = reason;
  AbortAll(std::move(reason));
  poll_.Cancel();
  if (bells_ != nullptr) {
    bells_->CancelPending();
  }
  queue_.reset();
  layout_.reset();
  free_slots_.clear();
  provider_ = DeviceId::Invalid();
  instance_ = InstanceId::Invalid();
  session_base_ = VirtAddr(0);
  session_bytes_ = 0;
  depth_ = 0;
}

void FileClient::Close(sim::MoveFn<void(Status), 160> done) {
  LASTCPU_CHECK(done != nullptr, "close without callback");
  if (queue_ == nullptr) {
    done(FailedPrecondition("session not open"));
    return;
  }
  reset_reason_ = Aborted("session closing");
  AbortAll(Aborted("session closing"));
  poll_.Cancel();
  queue_.reset();
  auto done_ptr = std::make_shared<sim::MoveFn<void(Status), 160>>(std::move(done));
  host_->rpc().Call<void>(
      provider_, proto::CloseRequest{instance_}, [this, done_ptr](Result<void> closed) {
        // Free the session memory regardless of close outcome.
        host_->rpc().Call<void>(
            kBusDevice, proto::MemFreeRequest{pasid_, session_base_, session_bytes_},
            [done_ptr, closed = closed.ok()](Result<void> freed) {
              if (!closed) {
                (*done_ptr)(Internal("close failed"));
                return;
              }
              (*done_ptr)(freed.ok() ? OkStatus() : freed.status());
            });
      });
}

namespace {

void SendFileAdmin(dev::Device* host, DeviceId provider, proto::Payload payload,
                   std::function<void(Status)> done) {
  LASTCPU_CHECK(host != nullptr && done != nullptr, "file admin needs host and callback");
  host->rpc().Call<void>(provider, std::move(payload),
                         [done = std::move(done)](Result<void> result) {
                           done(result.ok() ? OkStatus() : result.status());
                         });
}

}  // namespace

void CreateRemoteFile(dev::Device* host, DeviceId provider, const std::string& name,
                      uint64_t auth_token, std::function<void(Status)> done) {
  SendFileAdmin(host, provider, proto::FileCreate{name, auth_token}, std::move(done));
}

void DeleteRemoteFile(dev::Device* host, DeviceId provider, const std::string& name,
                      uint64_t auth_token, std::function<void(Status)> done) {
  SendFileAdmin(host, provider, proto::FileDelete{name, auth_token}, std::move(done));
}

void ListRemoteFiles(dev::Device* host, DeviceId provider, uint64_t auth_token,
                     std::function<void(Result<std::vector<std::string>>)> done) {
  LASTCPU_CHECK(host != nullptr && done != nullptr, "file list needs host and callback");
  // Listing is read-only, hence idempotent: opt into bounded retries so a
  // dropped request or response does not stall recovery scans.
  dev::RpcOptions options;
  options.max_attempts = 3;
  host->rpc().Call<proto::FileListResponse>(
      provider, proto::FileList{auth_token}, options,
      [done = std::move(done)](Result<proto::FileListResponse> response) {
        if (!response.ok()) {
          done(response.status());
          return;
        }
        done(std::move(response->names));
      });
}

}  // namespace lastcpu::ssddev
