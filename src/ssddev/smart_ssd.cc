#include "src/ssddev/smart_ssd.h"

#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {

SmartSsd::SmartSsd(DeviceId id, const dev::DeviceContext& context, SmartSsdConfig config)
    : dev::Device(id, "smart-ssd", context, config.device),
      nand_(context.simulator, config.nand, config.timing, /*seed=*/id.value() + 7),
      ftl_(context.simulator, &nand_, config.ftl),
      fs_(&ftl_) {
  if (config.host_auth_service) {
    auto auth = std::make_unique<auth::AuthService>(id, context.simulator);
    auth_ = auth.get();
    AddService(std::move(auth));
  }
  auto file_service = std::make_unique<FileService>(this, &fs_, auth_, config.file_service);
  file_service_ = file_service.get();
  AddService(std::move(file_service));

  // Loader uploads are auth-gated when the auth service is present.
  auth::AuthService* auth_for_loader = auth_;
  auto loader = std::make_unique<dev::LoaderService>(
      id, auth_for_loader == nullptr
              ? std::function<bool(uint64_t)>()
              : [auth_for_loader](uint64_t token) {
                  return auth_for_loader->ValidateToken(token);
                });
  loader_ = loader.get();
  AddService(std::move(loader));
}

void SmartSsd::ProvisionFile(const std::string& name, std::vector<uint8_t> contents,
                             FileAcl acl) {
  Status created = fs_.Create(name, std::move(acl));
  LASTCPU_CHECK(created.ok(), "provisioning failed: %s", created.ToString().c_str());
  if (!contents.empty()) {
    fs_.Write(name, 0, std::move(contents), [](Status s) {
      LASTCPU_CHECK(s.ok(), "provision write failed: %s", s.ToString().c_str());
    });
  }
}

void SmartSsd::OnMessage(const proto::Message& message) {
  if (message.Is<proto::AttachQueue>()) {
    const auto& attach = message.As<proto::AttachQueue>();
    Status attached = file_service_->AttachQueue(attach.instance, attach.base);
    if (attached.ok()) {
      TraceEvent("queue-attached", "instance=" + std::to_string(attach.instance.value()));
      Reply(message, proto::AttachQueueResponse{});
    } else {
      ReplyError(message, attached);
    }
    return;
  }
  dev::Device::OnMessage(message);
}

void SmartSsd::OnDoorbell(DeviceId from, uint64_t value) {
  (void)from;
  // Doorbell value = instance id of the session whose ring has work.
  file_service_->OnDoorbell(InstanceId(value));
}

void SmartSsd::OnPowerLoss() {
  // Order matters: sessions first (so failure callbacks cascading out of the
  // FTL's pending-op registry find no session and drop harmlessly), then the
  // filesystem's queued writes, then the FTL + NAND themselves.
  file_service_->PowerCut();
  fs_.PowerCut();
  ftl_.PowerCut();
  power_lost_ = true;
}

void SmartSsd::OnReset() {
  if (power_lost_) {
    // Cold boot after a power cut: replay the on-media journal before
    // serving anything.
    ftl_.Recover();
    fs_.Recover();
    power_lost_ = false;
  }
  dev::Device::OnReset();
}

}  // namespace lastcpu::ssddev
