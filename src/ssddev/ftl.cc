#include "src/ssddev/ftl.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {
namespace {

// Meta-page payload codec. One page holds `u32 count` followed by records:
//   u8 kind, u64 seq, u64 lpn, u32 file_id,
//   u16 name_len + bytes, u16 owner_len + bytes,
//   u16 n_readers + (u16 len + bytes)*, u16 n_writers + (u16 len + bytes)*
// Little-endian throughout. A page that fails to decode cleanly is treated as
// carrying no records (possible only on media corruption the NAND model does
// not currently produce; torn pages never reach the decoder).

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU16(out, static_cast<uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

struct Cursor {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  bool Have(size_t n) {
    if (static_cast<size_t>(end - p) < n) {
      ok = false;
    }
    return ok;
  }
  uint16_t U16() {
    if (!Have(2)) return 0;
    uint16_t v = static_cast<uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    return v;
  }
  uint32_t U32() {
    if (!Have(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Have(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
    p += 8;
    return v;
  }
  std::string String() {
    uint16_t n = U16();
    if (!Have(n)) return {};
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
};

size_t EncodedSize(const MetaRecord& record) {
  size_t n = 1 + 8 + 8 + 4 + 2 + record.name.size() + 2 + record.acl_owner.size() + 2 + 2;
  for (const auto& s : record.acl_readers) n += 2 + s.size();
  for (const auto& s : record.acl_writers) n += 2 + s.size();
  return n;
}

void EncodeRecord(std::vector<uint8_t>& out, const MetaRecord& record) {
  out.push_back(static_cast<uint8_t>(record.kind));
  PutU64(out, record.seq);
  PutU64(out, record.lpn);
  PutU32(out, record.file_id);
  PutString(out, record.name);
  PutString(out, record.acl_owner);
  PutU16(out, static_cast<uint16_t>(record.acl_readers.size()));
  for (const auto& s : record.acl_readers) PutString(out, s);
  PutU16(out, static_cast<uint16_t>(record.acl_writers.size()));
  for (const auto& s : record.acl_writers) PutString(out, s);
}

std::vector<uint8_t> EncodeMetaPage(const std::vector<MetaRecord>& records) {
  std::vector<uint8_t> out;
  PutU32(out, static_cast<uint32_t>(records.size()));
  for (const auto& record : records) {
    EncodeRecord(out, record);
  }
  return out;
}

std::vector<MetaRecord> DecodeMetaPage(const std::vector<uint8_t>& data) {
  std::vector<MetaRecord> records;
  Cursor c{data.data(), data.data() + data.size()};
  uint32_t count = c.U32();
  for (uint32_t i = 0; i < count && c.ok; ++i) {
    MetaRecord r;
    if (!c.Have(1)) break;
    r.kind = static_cast<MetaRecord::Kind>(*c.p++);
    r.seq = c.U64();
    r.lpn = c.U64();
    r.file_id = c.U32();
    r.name = c.String();
    r.acl_owner = c.String();
    uint16_t nr = c.U16();
    for (uint16_t j = 0; j < nr && c.ok; ++j) r.acl_readers.push_back(c.String());
    uint16_t nw = c.U16();
    for (uint16_t j = 0; j < nw && c.ok; ++j) r.acl_writers.push_back(c.String());
    if (!c.ok) break;
    records.push_back(std::move(r));
  }
  return records;
}

constexpr size_t kMetaPageHeaderBytes = 4;

}  // namespace

Ftl::Ftl(sim::Simulator* simulator, NandArray* nand, FtlConfig config)
    : simulator_(simulator), nand_(nand), config_(config) {
  LASTCPU_CHECK(simulator != nullptr && nand != nullptr, "FTL needs simulator and NAND");
  LASTCPU_CHECK(config.over_provisioning > 0.0 && config.over_provisioning < 0.9,
                "over-provisioning must be in (0, 0.9)");
  const NandGeometry& geometry = nand->geometry();
  logical_pages_ =
      static_cast<uint64_t>(static_cast<double>(geometry.total_pages()) *
                            (1.0 - config.over_provisioning));
  InitVolatile();
}

void Ftl::InitVolatile() {
  const NandGeometry& geometry = nand_->geometry();
  mapping_.assign(logical_pages_, std::nullopt);
  mapping_seq_.assign(logical_pages_, 0);
  write_epoch_.assign(logical_pages_, 0);
  dies_.clear();
  dies_.resize(geometry.dies);
  for (auto& die : dies_) {
    die.blocks.resize(geometry.blocks_per_die);
    for (uint32_t b = 0; b < geometry.blocks_per_die; ++b) {
      die.blocks[b].lpn_of_page.assign(geometry.pages_per_block, -1);
      die.free_blocks.push_back(b);
    }
  }
  next_die_ = 0;
  gc_in_progress_ = false;
  gates_.clear();
  stalled_.clear();
  meta_buffer_.clear();
  meta_buffer_bytes_ = 0;
  meta_flush_in_flight_ = false;
  meta_flush_stalled_ = false;
  cache_lru_.clear();
  cache_index_.clear();
}

bool Ftl::IsMapped(uint64_t lpn) const {
  return lpn < logical_pages_ && mapping_[lpn].has_value();
}

double Ftl::WriteAmplification() const {
  if (host_writes_ == 0) {
    return 0.0;
  }
  return static_cast<double>(nand_writes_) / static_cast<double>(host_writes_);
}

std::optional<Ftl::ReadCallback> Ftl::TakeRead(uint64_t op) {
  auto it = pending_reads_.find(op);
  if (it == pending_reads_.end()) {
    return std::nullopt;
  }
  ReadCallback cb = std::move(it->second);
  pending_reads_.erase(it);
  return cb;
}

std::optional<Ftl::WriteCallback> Ftl::TakeWrite(uint64_t op) {
  auto it = pending_writes_.find(op);
  if (it == pending_writes_.end()) {
    return std::nullopt;
  }
  WriteCallback cb = std::move(it->second);
  pending_writes_.erase(it);
  return cb;
}

void Ftl::FailWriteSoon(uint64_t op, Status status) {
  simulator_->Schedule(sim::Duration::Nanos(100), [this, op, status = std::move(status)] {
    if (auto cb = TakeWrite(op)) {
      (*cb)(status);
    }
  });
}

Ftl::CachedPage Ftl::CacheLookup(uint64_t lpn) {
  auto it = cache_index_.find(lpn);
  if (it == cache_index_.end()) {
    return nullptr;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return it->second->second;
}

void Ftl::CacheInsert(uint64_t lpn, uint32_t epoch, CachedPage data) {
  if (config_.read_cache_pages == 0) {
    return;
  }
  if (write_epoch_[lpn] != epoch) {
    stats_.GetCounter("cache_stale_fills_dropped").Increment();
    return;  // a write raced this fill; its data is stale
  }
  auto it = cache_index_.find(lpn);
  if (it != cache_index_.end()) {
    it->second->second = std::move(data);
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.emplace_front(lpn, std::move(data));
  cache_index_[lpn] = cache_lru_.begin();
  while (cache_lru_.size() > config_.read_cache_pages) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

void Ftl::CacheInvalidate(uint64_t lpn) {
  auto it = cache_index_.find(lpn);
  if (it != cache_index_.end()) {
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
  }
}

void Ftl::Read(uint64_t lpn, ReadCallback done) {
  LASTCPU_CHECK(done != nullptr, "FTL read without callback");
  if (powered_off_) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(Unavailable("ssd power loss"));
    });
    return;
  }
  if (lpn >= logical_pages_) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(InvalidArgument("logical page out of range"));
    });
    return;
  }
  uint64_t op = next_op_++;
  pending_reads_.emplace(op, std::move(done));
  if (!mapping_[lpn].has_value()) {
    simulator_->Schedule(sim::Duration::Nanos(100), [this, op] {
      if (auto cb = TakeRead(op)) {
        (*cb)(NotFound("unwritten logical page"));
      }
    });
    return;
  }
  host_reads_stat_.Increment();
  // Device-DRAM read cache: hot pages skip the NAND dies entirely. The hit
  // hands the caller a view of the shared page — no copy; the captured
  // reference keeps the page alive even if it is evicted before delivery.
  if (CachedPage cached = CacheLookup(lpn)) {
    ++cache_hits_;
    cache_hits_stat_.Increment();
    simulator_->Schedule(config_.read_cache_latency, [this, op, cached = std::move(cached)] {
      if (auto cb = TakeRead(op)) {
        (*cb)(std::span<const uint8_t>(*cached));
      }
    });
    return;
  }
  ++cache_misses_;
  uint32_t epoch = write_epoch_[lpn];
  nand_->ReadPage(*mapping_[lpn], [this, lpn, epoch, op](Result<std::vector<uint8_t>> data) {
    auto cb = TakeRead(op);
    if (!cb.has_value()) {
      return;  // the op was failed by a power cut before media answered
    }
    if (!data.ok()) {
      (*cb)(data.status());
      return;
    }
    auto page = std::make_shared<const std::vector<uint8_t>>(*std::move(data));
    CacheInsert(lpn, epoch, page);
    (*cb)(std::span<const uint8_t>(*page));
  });
}

Result<Ppa> Ftl::ClaimSlot() {
  const NandGeometry& geometry = nand_->geometry();
  // Round-robin across dies for striping; skip dies with nothing available.
  for (uint32_t attempt = 0; attempt < geometry.dies; ++attempt) {
    uint32_t d = next_die_;
    next_die_ = (next_die_ + 1) % geometry.dies;
    DieState& die = dies_[d];
    if (die.active_block.has_value()) {
      BlockInfo& active = die.blocks[*die.active_block];
      if (active.next_page < geometry.pages_per_block) {
        return Ppa{d, *die.active_block, active.next_page};
      }
      active.is_active = false;
      die.active_block.reset();
    }
    if (!die.free_blocks.empty()) {
      auto pick = die.free_blocks.begin();
      if (config_.wear_leveling) {
        // Open the least-worn free block so erase cycles spread evenly.
        for (auto it = die.free_blocks.begin(); it != die.free_blocks.end(); ++it) {
          if (nand_->EraseCount(d, *it) < nand_->EraseCount(d, *pick)) {
            pick = it;
          }
        }
      }
      uint32_t b = *pick;
      die.free_blocks.erase(pick);
      BlockInfo& block = die.blocks[b];
      block.is_free = false;
      block.is_active = true;
      block.next_page = 0;
      block.valid = 0;
      std::fill(block.lpn_of_page.begin(), block.lpn_of_page.end(), -1);
      die.active_block = b;
      return Ppa{d, b, 0};
    }
  }
  return ResourceExhausted("no free NAND blocks");
}

void Ftl::InvalidateCurrent(uint64_t lpn) {
  if (!mapping_[lpn].has_value()) {
    return;
  }
  Ppa old = *mapping_[lpn];
  BlockInfo& block = dies_[old.die].blocks[old.block];
  LASTCPU_CHECK(block.lpn_of_page[old.page] == static_cast<int64_t>(lpn),
                "reverse map out of sync");
  block.lpn_of_page[old.page] = -1;
  LASTCPU_CHECK(block.valid > 0, "invalidating page in empty block");
  --block.valid;
  mapping_[lpn].reset();
}

void Ftl::CommitMapping(uint64_t lpn, Ppa ppa, uint64_t seq) {
  InvalidateCurrent(lpn);
  mapping_[lpn] = ppa;
  mapping_seq_[lpn] = seq;
  BlockInfo& block = dies_[ppa.die].blocks[ppa.block];
  block.lpn_of_page[ppa.page] = static_cast<int64_t>(lpn);
  ++block.valid;
}

void Ftl::Write(uint64_t lpn, std::vector<uint8_t> data, WriteCallback done) {
  Write(lpn, std::move(data), FileTag{}, std::move(done));
}

void Ftl::Write(uint64_t lpn, std::vector<uint8_t> data, FileTag tag, WriteCallback done) {
  LASTCPU_CHECK(done != nullptr, "FTL write without callback");
  if (powered_off_) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(Unavailable("ssd power loss"));
    });
    return;
  }
  if (lpn >= logical_pages_) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(InvalidArgument("logical page out of range"));
    });
    return;
  }
  uint64_t op = next_op_++;
  pending_writes_.emplace(op, std::move(done));
  LpnGate& gate = gates_[lpn];
  if (gate.write_in_flight) {
    // A write to this lpn is already on media. Its OOB sequence number must
    // stay below ours, so we queue behind it instead of racing it to a die.
    gate.queue.push_back(QueuedOp{false, std::move(data), tag, op});
    return;
  }
  gate.write_in_flight = true;
  StartWrite(lpn, std::move(data), tag, op);
}

void Ftl::StartWrite(uint64_t lpn, std::vector<uint8_t> data, FileTag tag, uint64_t op) {
  auto slot = ClaimSlot();
  if (!slot.ok()) {
    if (CanGcReclaim() && stalled_.size() < config_.max_stalled_writes) {
      // Out of slots but GC can make space: park the write (the lpn gate
      // stays held, preserving order) and lean on the collector.
      ++write_stalls_;
      stats_.GetCounter("write_stalls").Increment();
      stalled_.push_back(StalledWrite{lpn, std::move(data), tag, op});
      MaybeStartGc();
      return;
    }
    stats_.GetCounter("write_failures").Increment();
    FailWriteSoon(op, slot.status());
    FinishLpnOp(lpn);
    return;
  }
  Ppa ppa = *slot;
  BlockInfo& block = dies_[ppa.die].blocks[ppa.block];
  // Advance the program cursor immediately so concurrent writes take
  // successive pages.
  block.next_page = ppa.page + 1;
  ++block.inflight;
  block.last_program = simulator_->Now();
  ++write_epoch_[lpn];
  CacheInvalidate(lpn);
  ++host_writes_;
  ++nand_writes_;
  host_writes_stat_.Increment();
  uint64_t seq = seq_++;
  OobTag oob{OobTag::Kind::kData, seq, lpn, tag.file_id, tag.file_page, tag.size_after};
  nand_->ProgramPage(ppa, std::move(data), oob, [this, lpn, ppa, seq, op](Status s) {
    --dies_[ppa.die].blocks[ppa.block].inflight;
    auto cb = TakeWrite(op);
    if (!s.ok()) {
      if (cb.has_value()) {
        (*cb)(s);
      }
      FinishLpnOp(lpn);
      return;
    }
    CommitMapping(lpn, ppa, seq);
    // A read that started inside the program window walked the *old* mapping
    // under the already-bumped epoch and may have landed in the cache before
    // this commit; bump the epoch again and purge any such fill.
    ++write_epoch_[lpn];
    CacheInvalidate(lpn);
    if (cb.has_value()) {
      (*cb)(OkStatus());
    }
    FinishLpnOp(lpn);
    MaybeStartGc();
  });
}

void Ftl::FinishLpnOp(uint64_t lpn) {
  if (powered_off_) {
    return;
  }
  auto it = gates_.find(lpn);
  if (it == gates_.end()) {
    return;
  }
  LpnGate& gate = it->second;
  while (!gate.queue.empty() && gate.queue.front().is_trim) {
    gate.queue.pop_front();
    ApplyTrim(lpn);
  }
  if (gate.queue.empty()) {
    gates_.erase(it);
    return;
  }
  QueuedOp next = std::move(gate.queue.front());
  gate.queue.pop_front();
  StartWrite(lpn, std::move(next.data), next.tag, next.op);
}

void Ftl::Trim(uint64_t lpn) {
  if (powered_off_ || lpn >= logical_pages_) {
    return;
  }
  auto it = gates_.find(lpn);
  if (it != gates_.end()) {
    // A write to this lpn is in flight; applying the trim now would journal
    // a tombstone that the in-flight write's lower sequence number cannot
    // beat at recovery. Queue it behind the write instead.
    it->second.queue.push_back(QueuedOp{true, {}, {}, 0});
    return;
  }
  ApplyTrim(lpn);
}

void Ftl::ApplyTrim(uint64_t lpn) {
  ++write_epoch_[lpn];
  CacheInvalidate(lpn);
  if (mapping_[lpn].has_value()) {
    // Journal a tombstone so recovery discards the page's old data tags. An
    // unmapped lpn needs none: every tag it ever had is already dominated by
    // an earlier tombstone.
    MetaRecord record;
    record.kind = MetaRecord::Kind::kTrim;
    record.lpn = lpn;
    AppendMeta(std::move(record));
  }
  InvalidateCurrent(lpn);
  stats_.GetCounter("trims").Increment();
  MaybeStartGc();
}

void Ftl::AppendMeta(MetaRecord record) {
  if (powered_off_) {
    return;  // the journal dies with the rail; callers learn via SyncMeta
  }
  record.seq = seq_++;
  meta_buffer_bytes_ += EncodedSize(record);
  meta_buffer_.push_back(std::move(record));
  MaybeFlushMeta();
}

void Ftl::SyncMeta(WriteCallback done) {
  LASTCPU_CHECK(done != nullptr, "SyncMeta without callback");
  if (powered_off_) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(Unavailable("ssd power loss"));
    });
    return;
  }
  if (meta_flush_in_flight_) {
    if (meta_buffer_.empty()) {
      meta_waiters_inflight_.push_back(std::move(done));
    } else {
      meta_waiters_queued_.push_back(std::move(done));
    }
    return;
  }
  if (meta_buffer_.empty()) {
    simulator_->Schedule(sim::Duration::Nanos(100),
                         [done = std::move(done)] { done(OkStatus()); });
    return;
  }
  meta_waiters_inflight_.push_back(std::move(done));
  FlushMeta();
}

void Ftl::MaybeFlushMeta() {
  if (powered_off_ || meta_flush_in_flight_ || meta_flush_stalled_ || meta_buffer_.empty()) {
    return;
  }
  bool overfull = kMetaPageHeaderBytes + meta_buffer_bytes_ > page_bytes();
  if (!overfull && meta_waiters_queued_.empty()) {
    return;
  }
  for (auto& waiter : meta_waiters_queued_) {
    meta_waiters_inflight_.push_back(std::move(waiter));
  }
  meta_waiters_queued_.clear();
  FlushMeta();
}

void Ftl::FlushMeta() {
  LASTCPU_CHECK(!meta_flush_in_flight_ && !meta_buffer_.empty(), "bad meta flush state");
  auto slot = ClaimSlot();
  if (!slot.ok()) {
    if (CanGcReclaim()) {
      meta_flush_stalled_ = true;
      MaybeStartGc();
      return;
    }
    std::vector<WriteCallback> waiters = std::move(meta_waiters_inflight_);
    meta_waiters_inflight_.clear();
    for (auto& waiter : waiters) {
      simulator_->Schedule(sim::Duration::Nanos(100),
                           [w = std::move(waiter), s = slot.status()]() mutable { w(s); });
    }
    return;
  }
  // Take records off the front until the page is full; the remainder rides
  // the next flush.
  std::vector<MetaRecord> batch;
  size_t bytes = kMetaPageHeaderBytes;
  while (!meta_buffer_.empty()) {
    size_t need = EncodedSize(meta_buffer_.front());
    if (!batch.empty() && bytes + need > page_bytes()) {
      break;
    }
    bytes += need;
    meta_buffer_bytes_ -= need;
    batch.push_back(std::move(meta_buffer_.front()));
    meta_buffer_.erase(meta_buffer_.begin());
  }
  meta_flush_in_flight_ = true;
  Ppa ppa = *slot;
  BlockInfo& block = dies_[ppa.die].blocks[ppa.block];
  block.next_page = ppa.page + 1;
  ++block.inflight;
  block.last_program = simulator_->Now();
  // The journal page is accounted live immediately so GC never treats the
  // claimed slot as garbage while the program is in flight.
  block.lpn_of_page[ppa.page] = kMetaPage;
  ++block.valid;
  ++nand_writes_;
  stats_.GetCounter("meta_flushes").Increment();
  OobTag oob{OobTag::Kind::kMeta, seq_++, 0, 0, 0, 0};
  nand_->ProgramPage(ppa, EncodeMetaPage(batch), oob, [this, ppa](Status s) {
    --dies_[ppa.die].blocks[ppa.block].inflight;
    meta_flush_in_flight_ = false;
    std::vector<WriteCallback> waiters = std::move(meta_waiters_inflight_);
    meta_waiters_inflight_.clear();
    for (auto& waiter : waiters) {
      waiter(s);
    }
    MaybeFlushMeta();
    MaybeStartGc();
  });
}

bool Ftl::CanGcReclaim() const {
  // Callers ask this with every program slot exhausted. A running GC will
  // free a block when it completes; otherwise GC can only make progress by
  // erasing an already-empty block — relocation would need the very slots we
  // lack, so a valid>0 victim is no help here.
  if (gc_in_progress_) {
    return true;
  }
  for (const auto& die : dies_) {
    for (const auto& block : die.blocks) {
      if (!block.is_free && !block.is_active && block.inflight == 0 && block.valid == 0) {
        return true;
      }
    }
  }
  return false;
}

std::optional<std::pair<uint32_t, uint32_t>> Ftl::FindVictim() const {
  const NandGeometry& geometry = nand_->geometry();
  // Greedy with a cost-benefit age filter: prefer the fewest valid pages,
  // but skip blocks programmed within gc_min_block_age — they are likely
  // still self-invalidating and relocating them is wasted work. If every
  // candidate is young, fall back to pure greedy.
  std::optional<std::pair<uint32_t, uint32_t>> victim;
  for (int pass = 0; pass < 2 && !victim.has_value(); ++pass) {
    uint32_t best_valid = geometry.pages_per_block;
    for (uint32_t d = 0; d < geometry.dies; ++d) {
      for (uint32_t b = 0; b < geometry.blocks_per_die; ++b) {
        const BlockInfo& block = dies_[d].blocks[b];
        if (block.is_free || block.is_active || block.inflight > 0) {
          continue;
        }
        if (pass == 0 &&
            block.last_program + config_.gc_min_block_age > simulator_->Now()) {
          continue;
        }
        if (block.valid < best_valid) {
          best_valid = block.valid;
          victim = {d, b};
        }
      }
    }
  }
  return victim;
}

void Ftl::MaybeStartGc() {
  if (gc_in_progress_ || powered_off_) {
    return;
  }
  bool pressure = !stalled_.empty() || meta_flush_stalled_;
  for (const auto& die : dies_) {
    if (die.free_blocks.size() < config_.gc_free_block_threshold) {
      pressure = true;
    }
  }
  if (!pressure) {
    return;
  }
  auto victim = FindVictim();
  if (!victim.has_value()) {
    return;
  }
  gc_in_progress_ = true;
  ++gc_runs_;
  stats_.GetCounter("gc_runs").Increment();
  auto [die, block] = *victim;
  std::vector<uint32_t> pages;
  const std::vector<int64_t>& lpn_of_page = dies_[die].blocks[block].lpn_of_page;
  for (uint32_t p = 0; p < lpn_of_page.size(); ++p) {
    if (lpn_of_page[p] != -1) {
      pages.push_back(p);
    }
  }
  RelocateNext(die, block, std::move(pages), 0);
}

void Ftl::AbortGcWedged(const Status& why) {
  // No slot to relocate into and nothing erasable: the drive is wedged.
  // Everything parked on GC progress fails rather than hangs.
  stats_.GetCounter("gc_aborts").Increment();
  gc_in_progress_ = false;
  std::deque<StalledWrite> stalled = std::move(stalled_);
  stalled_.clear();
  for (auto& w : stalled) {
    stats_.GetCounter("write_failures").Increment();
    FailWriteSoon(w.op, why);
    FinishLpnOp(w.lpn);
  }
  if (meta_flush_stalled_) {
    meta_flush_stalled_ = false;
    std::vector<WriteCallback> waiters = std::move(meta_waiters_inflight_);
    meta_waiters_inflight_.clear();
    for (auto& waiter : meta_waiters_queued_) {
      waiters.push_back(std::move(waiter));
    }
    meta_waiters_queued_.clear();
    for (auto& waiter : waiters) {
      simulator_->Schedule(sim::Duration::Nanos(100),
                           [w = std::move(waiter), why]() mutable { w(why); });
    }
  }
}

void Ftl::RelocateNext(uint32_t die, uint32_t block, std::vector<uint32_t> pages, size_t index) {
  if (powered_off_) {
    return;
  }
  if (index >= pages.size()) {
    FinishGc(die, block);
    return;
  }
  uint32_t p = pages[index];
  int64_t entry = dies_[die].blocks[block].lpn_of_page[p];
  if (entry == -1) {
    // Invalidated (host write or trim) since the victim was chosen.
    RelocateNext(die, block, std::move(pages), index + 1);
    return;
  }
  Ppa source{die, block, p};
  if (entry == kMetaPage) {
    RelocateMetaPage(die, block, std::move(pages), index, source);
    return;
  }
  uint64_t lpn = static_cast<uint64_t>(entry);
  LASTCPU_CHECK(mapping_[lpn].has_value() && *mapping_[lpn] == source, "reverse map out of sync");
  if (gates_.find(lpn) != gates_.end()) {
    // A host write/trim to this lpn is in flight or queued. Relocating now
    // would give the OLD data a NEWER media sequence number than the host
    // write gets — recovery would resurrect the stale value. Skip the page;
    // the host op invalidates it anyway, and FinishGc defers the erase.
    stats_.GetCounter("gc_skipped_inflight").Increment();
    RelocateNext(die, block, std::move(pages), index + 1);
    return;
  }
  // Carry the filesystem identity forward: the relocated copy must recover
  // exactly like the original would have.
  OobTag old_tag = nand_->OobOf(source);
  nand_->ReadPage(source, [this, die, block, pages = std::move(pages), index, lpn, source,
                           old_tag](Result<std::vector<uint8_t>> data) mutable {
    if (powered_off_) {
      return;
    }
    if (!data.ok()) {
      // Media error during relocation: the page is lost; drop the mapping so
      // readers see the failure rather than stale data.
      InvalidateCurrent(lpn);
      stats_.GetCounter("gc_relocation_failures").Increment();
      RelocateNext(die, block, std::move(pages), index + 1);
      return;
    }
    auto slot = ClaimSlot();
    if (!slot.ok()) {
      AbortGcWedged(slot.status());
      return;
    }
    Ppa target = *slot;
    BlockInfo& tblock = dies_[target.die].blocks[target.block];
    tblock.next_page = target.page + 1;
    ++tblock.inflight;
    tblock.last_program = simulator_->Now();
    ++nand_writes_;
    ++gc_relocated_pages_;
    stats_.GetCounter("gc_relocations").Increment();
    uint64_t seq = seq_++;
    OobTag oob{OobTag::Kind::kData, seq, lpn, old_tag.file_id, old_tag.file_page,
               old_tag.size_after};
    nand_->ProgramPage(
        target, *std::move(data), oob,
        [this, die, block, pages = std::move(pages), index, lpn, source, target,
         seq](Status s) mutable {
          --dies_[target.die].blocks[target.block].inflight;
          // Only commit if the lpn still points at the source: a host write
          // or trim racing the relocation supersedes it (the relocated copy's
          // older payload is harmless on media — its tag loses on sequence).
          if (s.ok() && mapping_[lpn].has_value() && *mapping_[lpn] == source) {
            CommitMapping(lpn, target, seq);
          }
          RelocateNext(die, block, std::move(pages), index + 1);
        });
  });
}

void Ftl::RelocateMetaPage(uint32_t die, uint32_t block, std::vector<uint32_t> pages,
                           size_t index, Ppa source) {
  nand_->ReadPage(source, [this, die, block, pages = std::move(pages), index,
                           source](Result<std::vector<uint8_t>> data) mutable {
    if (powered_off_) {
      return;
    }
    BlockInfo& sblock = dies_[die].blocks[block];
    if (!data.ok()) {
      stats_.GetCounter("gc_relocation_failures").Increment();
      sblock.lpn_of_page[source.page] = -1;
      --sblock.valid;
      RelocateNext(die, block, std::move(pages), index + 1);
      return;
    }
    // Prune dead journal records before copying the page forward: a trim
    // tombstone is obsolete once its lpn has been re-written under a newer
    // sequence number. Filesystem records are kept verbatim — their
    // lifetime is the filesystem's business, not the FTL's.
    std::vector<MetaRecord> keep;
    for (MetaRecord& record : DecodeMetaPage(*data)) {
      if (record.kind == MetaRecord::Kind::kTrim && record.lpn < logical_pages_ &&
          mapping_[record.lpn].has_value() && mapping_seq_[record.lpn] > record.seq) {
        continue;
      }
      keep.push_back(std::move(record));
    }
    if (keep.empty()) {
      // Nothing worth carrying: the journal page simply dies with the block.
      sblock.lpn_of_page[source.page] = -1;
      --sblock.valid;
      RelocateNext(die, block, std::move(pages), index + 1);
      return;
    }
    auto slot = ClaimSlot();
    if (!slot.ok()) {
      AbortGcWedged(slot.status());
      return;
    }
    Ppa target = *slot;
    BlockInfo& tblock = dies_[target.die].blocks[target.block];
    tblock.next_page = target.page + 1;
    ++tblock.inflight;
    tblock.last_program = simulator_->Now();
    ++nand_writes_;
    ++gc_relocated_pages_;
    stats_.GetCounter("gc_relocations").Increment();
    // Fresh page-level sequence; the records keep their original ones.
    OobTag oob{OobTag::Kind::kMeta, seq_++, 0, 0, 0, 0};
    nand_->ProgramPage(target, EncodeMetaPage(keep), oob,
                       [this, die, block, pages = std::move(pages), index, source,
                        target](Status s) mutable {
                         BlockInfo& tb = dies_[target.die].blocks[target.block];
                         --tb.inflight;
                         if (s.ok()) {
                           tb.lpn_of_page[target.page] = kMetaPage;
                           ++tb.valid;
                           BlockInfo& sb = dies_[die].blocks[block];
                           sb.lpn_of_page[source.page] = -1;
                           --sb.valid;
                         }
                         RelocateNext(die, block, std::move(pages), index + 1);
                       });
  });
}

void Ftl::FinishGc(uint32_t die, uint32_t block) {
  BlockInfo& info = dies_[die].blocks[block];
  if (info.valid > 0) {
    // Some pages were skipped (in-flight host writes) or failed to move.
    // Defer: no erase this round. The host ops that caused the skips will
    // invalidate their pages and their completions re-kick GC.
    stats_.GetCounter("gc_deferred").Increment();
    gc_in_progress_ = false;
    return;
  }
  nand_->EraseBlock(die, block, [this, die, block](Status s) {
    LASTCPU_CHECK(s.ok(), "erase failed during GC");
    BlockInfo& info = dies_[die].blocks[block];
    LASTCPU_CHECK(info.valid == 0 && info.inflight == 0, "erasing block with live pages");
    std::fill(info.lpn_of_page.begin(), info.lpn_of_page.end(), -1);
    info.next_page = 0;
    info.is_free = true;
    dies_[die].free_blocks.push_back(block);
    gc_in_progress_ = false;
    PumpStalled();
    MaybeStartGc();  // other dies may still be low
  });
}

void Ftl::PumpStalled() {
  if (powered_off_) {
    return;
  }
  if (meta_flush_stalled_ && !meta_flush_in_flight_) {
    meta_flush_stalled_ = false;
    if (!meta_buffer_.empty()) {
      FlushMeta();
    }
  }
  size_t n = stalled_.size();
  for (size_t i = 0; i < n && !stalled_.empty(); ++i) {
    StalledWrite w = std::move(stalled_.front());
    stalled_.pop_front();
    StartWrite(w.lpn, std::move(w.data), w.tag, w.op);
  }
}

void Ftl::PowerCut() {
  if (powered_off_) {
    return;
  }
  powered_off_ = true;
  stats_.GetCounter("power_cuts").Increment();
  // Tear the media first: in-flight programs become torn pages and every
  // already-scheduled NAND completion is dropped (that silicon lost power).
  nand_->PowerCut();
  Status why = Unavailable("ssd power loss");
  std::map<uint64_t, ReadCallback> reads = std::move(pending_reads_);
  pending_reads_.clear();
  std::map<uint64_t, WriteCallback> writes = std::move(pending_writes_);
  pending_writes_.clear();
  for (auto& [op, cb] : reads) {
    cb(why);
  }
  for (auto& [op, cb] : writes) {
    cb(why);
  }
  std::vector<WriteCallback> waiters = std::move(meta_waiters_inflight_);
  meta_waiters_inflight_.clear();
  for (auto& waiter : meta_waiters_queued_) {
    waiters.push_back(std::move(waiter));
  }
  meta_waiters_queued_.clear();
  for (auto& waiter : waiters) {
    waiter(why);
  }
  gates_.clear();
  stalled_.clear();
  meta_buffer_.clear();
  meta_buffer_bytes_ = 0;
  meta_flush_in_flight_ = false;
  meta_flush_stalled_ = false;
  gc_in_progress_ = false;
  cache_lru_.clear();
  cache_index_.clear();
}

void Ftl::Recover() {
  LASTCPU_CHECK(powered_off_, "Recover on a powered FTL");
  const NandGeometry& geometry = nand_->geometry();
  ++recoveries_;
  stats_.GetCounter("recoveries").Increment();
  InitVolatile();
  recovered_meta_.clear();
  recovered_file_pages_.clear();

  // Full-media OOB scan. Charge the modeled cost to each die up front — the
  // drive is busy replaying its journal before it serves traffic.
  for (uint32_t d = 0; d < geometry.dies; ++d) {
    nand_->OccupyForScan(
        d, config_.recovery_scan_per_page *
               (static_cast<uint64_t>(geometry.blocks_per_die) * geometry.pages_per_block));
  }

  struct Winner {
    Ppa ppa;
    uint64_t seq = 0;
    OobTag tag;
  };
  std::unordered_map<uint64_t, Winner> winners;
  std::vector<MetaRecord> records;
  uint64_t max_seq = 0;
  uint64_t torn = 0;

  for (uint32_t d = 0; d < geometry.dies; ++d) {
    DieState& die = dies_[d];
    die.free_blocks.clear();
    die.active_block.reset();
    for (uint32_t b = 0; b < geometry.blocks_per_die; ++b) {
      BlockInfo& block = die.blocks[b];
      bool clean = true;
      for (uint32_t p = 0; p < geometry.pages_per_block; ++p) {
        Ppa ppa{d, b, p};
        switch (nand_->StateOf(ppa)) {
          case NandArray::PageState::kErased:
            break;
          case NandArray::PageState::kTorn:
            // An interrupted program: the tail entry the journal replay must
            // discard. Unreadable until the block is erased.
            clean = false;
            ++torn;
            break;
          case NandArray::PageState::kWritten: {
            clean = false;
            const OobTag& tag = nand_->OobOf(ppa);
            max_seq = std::max(max_seq, tag.seq);
            if (tag.kind == OobTag::Kind::kData && tag.lpn < logical_pages_) {
              auto [it, inserted] = winners.emplace(tag.lpn, Winner{ppa, tag.seq, tag});
              if (!inserted && tag.seq > it->second.seq) {
                it->second = Winner{ppa, tag.seq, tag};
              }
            } else if (tag.kind == OobTag::Kind::kMeta) {
              // Journal pages stay live until GC prunes them.
              block.lpn_of_page[p] = kMetaPage;
              ++block.valid;
              for (MetaRecord& record : DecodeMetaPage(nand_->DataOf(ppa))) {
                max_seq = std::max(max_seq, record.seq);
                records.push_back(std::move(record));
              }
            }
            // kNone pages (raw NAND use outside the FTL) are garbage.
            break;
          }
        }
      }
      if (clean) {
        block.is_free = true;
        block.next_page = 0;
        die.free_blocks.push_back(b);
      } else {
        // Seal every block that holds anything — including partially
        // programmed ones. New writes go to freshly-opened blocks; sealed
        // stragglers are reclaimed by GC.
        block.is_free = false;
        block.is_active = false;
        block.next_page = geometry.pages_per_block;
      }
    }
  }

  // Apply trim tombstones: a tombstone newer than the lpn's best data tag
  // kills the mapping.
  std::sort(records.begin(), records.end(),
            [](const MetaRecord& a, const MetaRecord& b) { return a.seq < b.seq; });
  for (const MetaRecord& record : records) {
    if (record.kind != MetaRecord::Kind::kTrim) {
      continue;
    }
    auto it = winners.find(record.lpn);
    if (it != winners.end() && it->second.seq < record.seq) {
      winners.erase(it);
    }
  }

  // Install the surviving winners.
  uint64_t recovered_pages = 0;
  for (const auto& [lpn, winner] : winners) {
    mapping_[lpn] = winner.ppa;
    mapping_seq_[lpn] = winner.seq;
    BlockInfo& block = dies_[winner.ppa.die].blocks[winner.ppa.block];
    block.lpn_of_page[winner.ppa.page] = static_cast<int64_t>(lpn);
    ++block.valid;
    ++recovered_pages;
    if (winner.tag.file_id != 0) {
      recovered_file_pages_.push_back(RecoveredFilePage{winner.tag.file_id, winner.tag.file_page,
                                                        lpn, winner.seq, winner.tag.size_after});
    }
  }
  // Winners came out of an unordered map; give downstream consumers (and
  // byte-identical rerun assertions) a deterministic order.
  std::sort(recovered_file_pages_.begin(), recovered_file_pages_.end(),
            [](const RecoveredFilePage& a, const RecoveredFilePage& b) { return a.seq < b.seq; });
  recovered_meta_ = std::move(records);

  seq_ = max_seq + 1;
  powered_off_ = false;
  stats_.GetCounter("recovered_pages").Increment(recovered_pages);
  stats_.GetCounter("torn_pages_discarded").Increment(torn);
  stats_.GetCounter("recovered_meta_records").Increment(recovered_meta_.size());
  MaybeStartGc();
}

}  // namespace lastcpu::ssddev
