#include "src/ssddev/ftl.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::ssddev {

Ftl::Ftl(sim::Simulator* simulator, NandArray* nand, FtlConfig config)
    : simulator_(simulator), nand_(nand), config_(config) {
  LASTCPU_CHECK(simulator != nullptr && nand != nullptr, "FTL needs simulator and NAND");
  LASTCPU_CHECK(config.over_provisioning > 0.0 && config.over_provisioning < 0.9,
                "over-provisioning must be in (0, 0.9)");
  const NandGeometry& geometry = nand->geometry();
  logical_pages_ =
      static_cast<uint64_t>(static_cast<double>(geometry.total_pages()) *
                            (1.0 - config.over_provisioning));
  mapping_.resize(logical_pages_);
  write_epoch_.assign(logical_pages_, 0);
  dies_.resize(geometry.dies);
  for (auto& die : dies_) {
    die.blocks.resize(geometry.blocks_per_die);
    for (uint32_t b = 0; b < geometry.blocks_per_die; ++b) {
      die.blocks[b].lpn_of_page.assign(geometry.pages_per_block, -1);
      die.free_blocks.push_back(b);
    }
  }
}

bool Ftl::IsMapped(uint64_t lpn) const {
  return lpn < logical_pages_ && mapping_[lpn].has_value();
}

double Ftl::WriteAmplification() const {
  if (host_writes_ == 0) {
    return 0.0;
  }
  return static_cast<double>(nand_writes_) / static_cast<double>(host_writes_);
}

Ftl::CachedPage Ftl::CacheLookup(uint64_t lpn) {
  auto it = cache_index_.find(lpn);
  if (it == cache_index_.end()) {
    return nullptr;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  return it->second->second;
}

void Ftl::CacheInsert(uint64_t lpn, uint32_t epoch, CachedPage data) {
  if (config_.read_cache_pages == 0) {
    return;
  }
  if (write_epoch_[lpn] != epoch) {
    stats_.GetCounter("cache_stale_fills_dropped").Increment();
    return;  // a write raced this fill; its data is stale
  }
  auto it = cache_index_.find(lpn);
  if (it != cache_index_.end()) {
    it->second->second = std::move(data);
    cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
    return;
  }
  cache_lru_.emplace_front(lpn, std::move(data));
  cache_index_[lpn] = cache_lru_.begin();
  while (cache_lru_.size() > config_.read_cache_pages) {
    cache_index_.erase(cache_lru_.back().first);
    cache_lru_.pop_back();
  }
}

void Ftl::CacheInvalidate(uint64_t lpn) {
  auto it = cache_index_.find(lpn);
  if (it != cache_index_.end()) {
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
  }
}

void Ftl::Read(uint64_t lpn, ReadCallback done) {
  LASTCPU_CHECK(done != nullptr, "FTL read without callback");
  if (lpn >= logical_pages_) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(InvalidArgument("logical page out of range"));
    });
    return;
  }
  if (!mapping_[lpn].has_value()) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(NotFound("unwritten logical page"));
    });
    return;
  }
  host_reads_stat_.Increment();
  // Device-DRAM read cache: hot pages skip the NAND dies entirely. The hit
  // hands the caller a view of the shared page — no copy; the captured
  // reference keeps the page alive even if it is evicted before delivery.
  if (CachedPage cached = CacheLookup(lpn)) {
    ++cache_hits_;
    cache_hits_stat_.Increment();
    simulator_->Schedule(config_.read_cache_latency,
                         [done = std::move(done), cached = std::move(cached)] {
                           done(std::span<const uint8_t>(*cached));
                         });
    return;
  }
  ++cache_misses_;
  uint32_t epoch = write_epoch_[lpn];
  nand_->ReadPage(*mapping_[lpn], [this, lpn, epoch, done = std::move(done)](
                                      Result<std::vector<uint8_t>> data) {
    if (!data.ok()) {
      done(data.status());
      return;
    }
    auto page = std::make_shared<const std::vector<uint8_t>>(*std::move(data));
    CacheInsert(lpn, epoch, page);
    done(std::span<const uint8_t>(*page));
  });
}

Result<Ppa> Ftl::ClaimSlot() {
  const NandGeometry& geometry = nand_->geometry();
  // Round-robin across dies for striping; skip dies with nothing available.
  for (uint32_t attempt = 0; attempt < geometry.dies; ++attempt) {
    uint32_t d = next_die_;
    next_die_ = (next_die_ + 1) % geometry.dies;
    DieState& die = dies_[d];
    if (die.active_block.has_value()) {
      BlockInfo& active = die.blocks[*die.active_block];
      if (active.next_page < geometry.pages_per_block) {
        return Ppa{d, *die.active_block, active.next_page};
      }
      active.is_active = false;
      die.active_block.reset();
    }
    if (!die.free_blocks.empty()) {
      uint32_t b = die.free_blocks.front();
      die.free_blocks.pop_front();
      BlockInfo& block = die.blocks[b];
      block.is_free = false;
      block.is_active = true;
      block.next_page = 0;
      block.valid = 0;
      std::fill(block.lpn_of_page.begin(), block.lpn_of_page.end(), -1);
      die.active_block = b;
      return Ppa{d, b, 0};
    }
  }
  return ResourceExhausted("no free NAND blocks");
}

void Ftl::InvalidateCurrent(uint64_t lpn) {
  if (!mapping_[lpn].has_value()) {
    return;
  }
  Ppa old = *mapping_[lpn];
  BlockInfo& block = dies_[old.die].blocks[old.block];
  LASTCPU_CHECK(block.lpn_of_page[old.page] == static_cast<int64_t>(lpn),
                "reverse map out of sync");
  block.lpn_of_page[old.page] = -1;
  LASTCPU_CHECK(block.valid > 0, "invalidating page in empty block");
  --block.valid;
  mapping_[lpn].reset();
}

void Ftl::CommitMapping(uint64_t lpn, Ppa ppa) {
  InvalidateCurrent(lpn);
  mapping_[lpn] = ppa;
  BlockInfo& block = dies_[ppa.die].blocks[ppa.block];
  block.lpn_of_page[ppa.page] = static_cast<int64_t>(lpn);
  ++block.valid;
}

void Ftl::Write(uint64_t lpn, std::vector<uint8_t> data, WriteCallback done) {
  LASTCPU_CHECK(done != nullptr, "FTL write without callback");
  if (lpn >= logical_pages_) {
    simulator_->Schedule(sim::Duration::Nanos(100), [done = std::move(done)] {
      done(InvalidArgument("logical page out of range"));
    });
    return;
  }
  auto slot = ClaimSlot();
  if (!slot.ok()) {
    stats_.GetCounter("write_failures").Increment();
    simulator_->Schedule(sim::Duration::Nanos(100),
                         [done = std::move(done), status = slot.status()] { done(status); });
    return;
  }
  Ppa ppa = *slot;
  // Advance the program cursor immediately so concurrent writes take
  // successive pages.
  dies_[ppa.die].blocks[ppa.block].next_page = ppa.page + 1;
  ++write_epoch_[lpn];
  CacheInvalidate(lpn);
  ++host_writes_;
  ++nand_writes_;
  host_writes_stat_.Increment();
  nand_->ProgramPage(ppa, std::move(data), [this, lpn, ppa, done = std::move(done)](Status s) {
    if (!s.ok()) {
      done(s);
      return;
    }
    CommitMapping(lpn, ppa);
    // A read that started inside the program window walked the *old* mapping
    // under the already-bumped epoch and may have landed in the cache before
    // this commit; bump the epoch again and purge any such fill.
    ++write_epoch_[lpn];
    CacheInvalidate(lpn);
    done(OkStatus());
    MaybeStartGc();
  });
}

void Ftl::Trim(uint64_t lpn) {
  if (lpn >= logical_pages_) {
    return;
  }
  ++write_epoch_[lpn];
  CacheInvalidate(lpn);
  InvalidateCurrent(lpn);
  stats_.GetCounter("trims").Increment();
  MaybeStartGc();
}

void Ftl::MaybeStartGc() {
  if (gc_in_progress_) {
    return;
  }
  // Find the die most in need and its best victim: a full, inactive block
  // with the fewest valid pages (greedy), strictly fewer than full.
  const NandGeometry& geometry = nand_->geometry();
  std::optional<std::pair<uint32_t, uint32_t>> victim;
  uint32_t best_valid = geometry.pages_per_block;
  bool any_die_low = false;
  for (uint32_t d = 0; d < geometry.dies; ++d) {
    if (dies_[d].free_blocks.size() < config_.gc_free_block_threshold) {
      any_die_low = true;
    }
  }
  if (!any_die_low) {
    return;
  }
  for (uint32_t d = 0; d < geometry.dies; ++d) {
    for (uint32_t b = 0; b < geometry.blocks_per_die; ++b) {
      const BlockInfo& block = dies_[d].blocks[b];
      if (block.is_free || block.is_active || block.next_page < geometry.pages_per_block) {
        continue;  // only reclaim fully-programmed, inactive blocks
      }
      if (block.valid < best_valid) {
        best_valid = block.valid;
        victim = {d, b};
      }
    }
  }
  if (!victim.has_value()) {
    return;
  }
  gc_in_progress_ = true;
  ++gc_runs_;
  stats_.GetCounter("gc_runs").Increment();
  auto [die, block] = *victim;
  std::vector<uint64_t> live_lpns;
  for (int64_t lpn : dies_[die].blocks[block].lpn_of_page) {
    if (lpn >= 0) {
      live_lpns.push_back(static_cast<uint64_t>(lpn));
    }
  }
  RelocateNext(die, block, std::move(live_lpns), 0);
}

void Ftl::RelocateNext(uint32_t die, uint32_t block, std::vector<uint64_t> lpns, size_t index) {
  if (index >= lpns.size()) {
    FinishGc(die, block);
    return;
  }
  uint64_t lpn = lpns[index];
  // The page may have been invalidated by a host write racing the GC.
  if (!mapping_[lpn].has_value() || mapping_[lpn]->die != die || mapping_[lpn]->block != block) {
    RelocateNext(die, block, std::move(lpns), index + 1);
    return;
  }
  Ppa source = *mapping_[lpn];
  nand_->ReadPage(source, [this, die, block, lpns = std::move(lpns), index,
                           lpn](Result<std::vector<uint8_t>> data) mutable {
    if (!data.ok()) {
      // Media error during relocation: the page is lost; drop the mapping so
      // readers see the failure rather than stale data.
      InvalidateCurrent(lpn);
      stats_.GetCounter("gc_relocation_failures").Increment();
      RelocateNext(die, block, std::move(lpns), index + 1);
      return;
    }
    auto slot = ClaimSlot();
    if (!slot.ok()) {
      // Nowhere to relocate: abort this GC round (shouldn't happen with sane
      // over-provisioning).
      stats_.GetCounter("gc_aborts").Increment();
      gc_in_progress_ = false;
      return;
    }
    Ppa target = *slot;
    dies_[target.die].blocks[target.block].next_page = target.page + 1;
    ++nand_writes_;
    stats_.GetCounter("gc_relocations").Increment();
    nand_->ProgramPage(target, *std::move(data),
                       [this, die, block, lpns = std::move(lpns), index, lpn,
                        target](Status s) mutable {
                         if (s.ok()) {
                           CommitMapping(lpn, target);
                         }
                         RelocateNext(die, block, std::move(lpns), index + 1);
                       });
  });
}

void Ftl::FinishGc(uint32_t die, uint32_t block) {
  nand_->EraseBlock(die, block, [this, die, block](Status s) {
    BlockInfo& info = dies_[die].blocks[block];
    LASTCPU_CHECK(s.ok(), "erase failed during GC");
    LASTCPU_CHECK(info.valid == 0, "erasing block with valid pages");
    std::fill(info.lpn_of_page.begin(), info.lpn_of_page.end(), -1);
    info.next_page = 0;
    info.is_free = true;
    dies_[die].free_blocks.push_back(block);
    gc_in_progress_ = false;
    MaybeStartGc();  // other dies may still be low
  });
}

}  // namespace lastcpu::ssddev
