// FlashFs: the flat-namespace filesystem a smart SSD exposes as a service
// (paper Sec. 2.1: "a smart SSD that exposes a file system").
//
// Files are page-extent lists over the FTL's logical space. Per-file ACLs
// implement Sec. 4's access control ("access control to an individual file is
// implemented by the file system service"). Metadata lives in SSD DRAM for
// speed, but every mutation is journaled through the FTL's persistent meta
// log (create/delete/acl records) and every data page carries its file
// identity in the OOB tag — so the whole namespace is reconstructible from
// media after a power cut:
//
//  - Create() journals a create record and inserts a sync barrier ahead of
//    the file's data writes: no data write is acked before the record that
//    names the file is durable (otherwise recovery would orphan the pages).
//  - Delete() trims the pages (journaling tombstones) and parks the lpns
//    until the delete record is durable, so they cannot be recycled into a
//    state an old create record would resurrect.
//  - Each data page's tag records the file size made durable by that page;
//    a recovered file's size is the max over its surviving pages — the
//    acked durable prefix, never optimistic DRAM state.
#ifndef SRC_SSDDEV_FLASH_FS_H_
#define SRC_SSDDEV_FLASH_FS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/base/status.h"
#include "src/ssddev/ftl.h"

namespace lastcpu::ssddev {

// Per-file access control list. Empty sets mean "owner only".
struct FileAcl {
  std::string owner;
  std::set<std::string> readers;
  std::set<std::string> writers;

  bool MayRead(const std::string& user) const {
    return user == owner || readers.contains(user);
  }
  bool MayWrite(const std::string& user) const {
    return user == owner || writers.contains(user);
  }
};

struct FileInfo {
  uint64_t size = 0;
  uint64_t pages = 0;
  FileAcl acl;
};

class FlashFs {
 public:
  using ReadCallback = sim::MoveFn<void(Result<std::vector<uint8_t>>), 160>;
  using WriteCallback = sim::MoveFn<void(Status), 160>;

  explicit FlashFs(Ftl* ftl);

  // --- metadata (SSD-DRAM resident, synchronous) ----------------------------

  Status Create(const std::string& name, FileAcl acl = {});
  Status Delete(const std::string& name);
  bool Exists(const std::string& name) const;
  Result<FileInfo> Stat(const std::string& name) const;
  std::vector<std::string> List() const;
  Status SetAcl(const std::string& name, FileAcl acl);

  // --- data (flash resident, asynchronous) ----------------------------------

  // Reads [offset, offset+length) clamped to the file size; reading entirely
  // past EOF yields an empty buffer.
  void Read(const std::string& name, uint64_t offset, uint64_t length, ReadCallback done);

  // Writes at `offset`, extending the file as needed (sparse gaps read as
  // zeros). Partial-page writes read-modify-write the underlying page.
  void Write(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
             WriteCallback done);

  // Appends atomically at the current EOF; reports the offset written.
  void Append(const std::string& name, std::vector<uint8_t> data,
              sim::MoveFn<void(Result<uint64_t>), 160> done);

  // The power rail drops: every queued (not yet started) write fails with
  // Unavailable immediately — in-flight ones fail when the FTL flushes its
  // pending-op registry — and all DRAM metadata is discarded.
  void PowerCut();

  // Rebuilds the namespace from the FTL's replayed journal (must run after
  // Ftl::Recover()). Orphan pages — data whose create record never became
  // durable, or stragglers of deleted files — are trimmed back to the pool.
  void Recover();

  uint64_t free_pages() const;
  uint64_t total_pages() const { return ftl_->logical_pages(); }

 private:
  struct Inode {
    uint32_t id = 0;  // journaled identity; data-page tags carry it
    uint64_t size = 0;
    // Bytes known durable on media (≤ size, which is reserved optimistically
    // when a write is accepted). Data-page tags snapshot this so recovery
    // reports the acked prefix.
    uint64_t durable_size = 0;
    std::vector<uint64_t> lpns;  // one per page-sized extent
    FileAcl acl;
  };

  // Writes to one file execute strictly in submission order: concurrent
  // read-modify-writes of a shared tail page would otherwise lose updates.
  // Barriers (created by Create) hold the queue until the meta journal is
  // durable. A structured queue — not opaque thunks — lets PowerCut fail
  // everything still waiting.
  struct QueuedWrite {
    enum class Kind : uint8_t { kData, kBarrier };
    Kind kind = Kind::kData;
    uint64_t offset = 0;
    std::vector<uint8_t> data;
    WriteCallback done;
  };

  Result<uint64_t> AllocLpn();
  // Ensures the inode has backing pages through byte `end`.
  Status EnsureCapacity(Inode& inode, uint64_t end);

  // Sequential page-by-page writer shared by Write/Append. Looks the inode
  // up by name at every step so mid-flight deletion aborts cleanly.
  void WritePages(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
                  size_t page_index, WriteCallback done);
  void ReadPages(const std::string& name, uint64_t offset, uint64_t length,
                 std::shared_ptr<std::vector<uint8_t>> out, size_t page_index, ReadCallback done);

  void EnqueueWrite(const std::string& name, QueuedWrite queued);
  void PumpWrites(const std::string& name);

  Ftl* ftl_;
  std::map<std::string, Inode> files_;
  std::deque<uint64_t> free_lpns_;
  uint64_t next_lpn_ = 0;
  uint32_t next_file_id_ = 1;
  std::map<std::string, std::deque<QueuedWrite>> write_queues_;
  std::set<std::string> write_active_;
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_FLASH_FS_H_
