// FlashFs: the flat-namespace filesystem a smart SSD exposes as a service
// (paper Sec. 2.1: "a smart SSD that exposes a file system").
//
// Files are page-extent lists over the FTL's logical space. Per-file ACLs
// implement Sec. 4's access control ("access control to an individual file is
// implemented by the file system service"). Metadata lives in SSD DRAM
// (in-memory here); data pages live in flash and pay full NAND latencies.
#ifndef SRC_SSDDEV_FLASH_FS_H_
#define SRC_SSDDEV_FLASH_FS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/sim/move_fn.h"
#include "src/base/status.h"
#include "src/ssddev/ftl.h"

namespace lastcpu::ssddev {

// Per-file access control list. Empty sets mean "owner only".
struct FileAcl {
  std::string owner;
  std::set<std::string> readers;
  std::set<std::string> writers;

  bool MayRead(const std::string& user) const {
    return user == owner || readers.contains(user);
  }
  bool MayWrite(const std::string& user) const {
    return user == owner || writers.contains(user);
  }
};

struct FileInfo {
  uint64_t size = 0;
  uint64_t pages = 0;
  FileAcl acl;
};

class FlashFs {
 public:
  using ReadCallback = sim::MoveFn<void(Result<std::vector<uint8_t>>), 160>;
  using WriteCallback = sim::MoveFn<void(Status), 160>;

  explicit FlashFs(Ftl* ftl);

  // --- metadata (SSD-DRAM resident, synchronous) ----------------------------

  Status Create(const std::string& name, FileAcl acl = {});
  Status Delete(const std::string& name);
  bool Exists(const std::string& name) const;
  Result<FileInfo> Stat(const std::string& name) const;
  std::vector<std::string> List() const;
  Status SetAcl(const std::string& name, FileAcl acl);

  // --- data (flash resident, asynchronous) ----------------------------------

  // Reads [offset, offset+length) clamped to the file size; reading entirely
  // past EOF yields an empty buffer.
  void Read(const std::string& name, uint64_t offset, uint64_t length, ReadCallback done);

  // Writes at `offset`, extending the file as needed (sparse gaps read as
  // zeros). Partial-page writes read-modify-write the underlying page.
  void Write(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
             WriteCallback done);

  // Appends atomically at the current EOF; reports the offset written.
  void Append(const std::string& name, std::vector<uint8_t> data,
              sim::MoveFn<void(Result<uint64_t>), 160> done);

  uint64_t free_pages() const;
  uint64_t total_pages() const { return ftl_->logical_pages(); }

 private:
  struct Inode {
    uint64_t size = 0;
    std::vector<uint64_t> lpns;  // one per page-sized extent
    FileAcl acl;
  };

  Result<uint64_t> AllocLpn();
  // Ensures the inode has backing pages through byte `end`.
  Status EnsureCapacity(Inode& inode, uint64_t end);

  // Sequential page-by-page writer shared by Write/Append. Looks the inode
  // up by name at every step so mid-flight deletion aborts cleanly.
  void WritePages(const std::string& name, uint64_t offset, std::vector<uint8_t> data,
                  size_t page_index, WriteCallback done);
  void ReadPages(const std::string& name, uint64_t offset, uint64_t length,
                 std::shared_ptr<std::vector<uint8_t>> out, size_t page_index, ReadCallback done);

  // Writes to one file execute strictly in submission order: concurrent
  // read-modify-writes of a shared tail page would otherwise lose updates.
  void EnqueueWrite(const std::string& name, sim::MoveFn<void(), 160> thunk);
  void PumpWrites(const std::string& name);

  Ftl* ftl_;
  std::map<std::string, Inode> files_;
  std::deque<uint64_t> free_lpns_;
  uint64_t next_lpn_ = 0;
  std::map<std::string, std::deque<sim::MoveFn<void(), 160>>> write_queues_;
  std::set<std::string> write_active_;
};

}  // namespace lastcpu::ssddev

#endif  // SRC_SSDDEV_FLASH_FS_H_
