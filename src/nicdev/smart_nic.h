// SmartNic: the self-managing network device that runs offloaded application
// logic (paper Sec. 3: "the operations (get, insert, update, etc.) are
// processed in a smart-NIC").
//
// The NIC terminates external-network datagrams on its embedded cores, runs a
// pluggable AppEngine on each request (the KVS engine in the paper's
// example), and uses other devices' services — the SSD file service, the
// memory controller — through the system bus, with zero CPU involvement.
#ifndef SRC_NICDEV_SMART_NIC_H_
#define SRC_NICDEV_SMART_NIC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/dev/device.h"
#include "src/net/network.h"

namespace lastcpu::nicdev {

// Application logic offloaded onto the NIC. Implementations decode a request
// datagram, do their work (possibly using bus services), and respond.
class AppEngine {
 public:
  virtual ~AppEngine() = default;

  // Bring-up (open sessions, recover state). Must call `done`.
  virtual void Start(std::function<void(Status)> done) = 0;

  // One inbound datagram; `respond` sends the reply datagram.
  virtual void HandleRequest(std::vector<uint8_t> payload,
                             std::function<void(std::vector<uint8_t>)> respond) = 0;

  // Data-plane doorbell forwarded by the NIC; return true when consumed.
  virtual bool HandleDoorbell(DeviceId from, uint64_t value) = 0;

  // A peer device this engine depends on failed.
  virtual void OnPeerFailed(DeviceId device) { (void)device; }

  // A peer device was quarantined: it is never coming back, so stop retrying
  // against it and surface unavailability to clients instead.
  virtual void OnPeerPermanentlyFailed(DeviceId device) { (void)device; }
};

struct SmartNicConfig {
  // Embedded packet-processing cores and the per-request parse/dispatch cost.
  uint32_t cores = 4;
  sim::Duration request_cost = sim::Duration::Micros(1);
  dev::DeviceConfig device;
};

class SmartNic : public dev::Device {
 public:
  SmartNic(DeviceId id, const dev::DeviceContext& context, net::Network* network,
           SmartNicConfig config = {});

  // Installs the offloaded application; it starts when the NIC goes alive
  // (Sec. 2.2: "the device will load its applications").
  void LoadApp(std::unique_ptr<AppEngine> app);

  net::EndpointId endpoint() const { return endpoint_; }
  AppEngine* app() { return app_.get(); }
  bool app_ready() const { return app_ready_; }

  uint64_t requests_handled() const { return requests_handled_; }
  uint64_t requests_dropped() const { return requests_dropped_; }

 protected:
  void OnAlive() override;
  void OnReset() override;
  void OnDoorbell(DeviceId from, uint64_t value) override;
  void OnPeerFailed(DeviceId device) override;
  void OnPeerPermanentlyFailed(DeviceId device) override;

 private:
  void OnDatagram(net::EndpointId from, std::vector<uint8_t> payload);
  // Assigns work to the least-loaded embedded core; returns its finish time.
  sim::SimTime OccupyCore(sim::Duration cost);

  net::Network* network_;
  SmartNicConfig config_;
  net::EndpointId endpoint_ = 0;
  std::unique_ptr<AppEngine> app_;
  bool app_ready_ = false;
  std::vector<sim::SimTime> core_busy_until_;
  uint64_t requests_handled_ = 0;
  uint64_t requests_dropped_ = 0;
};

}  // namespace lastcpu::nicdev

#endif  // SRC_NICDEV_SMART_NIC_H_
