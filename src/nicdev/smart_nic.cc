#include "src/nicdev/smart_nic.h"

#include <algorithm>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::nicdev {

SmartNic::SmartNic(DeviceId id, const dev::DeviceContext& context, net::Network* network,
                   SmartNicConfig config)
    : dev::Device(id, "smart-nic", context, config.device),
      network_(network),
      config_(config),
      core_busy_until_(config.cores) {
  LASTCPU_CHECK(network != nullptr, "NIC needs a network");
  LASTCPU_CHECK(config.cores > 0, "NIC needs at least one core");
  endpoint_ = network_->Attach([this](net::EndpointId from, std::vector<uint8_t> payload) {
    OnDatagram(from, std::move(payload));
  });
}

void SmartNic::LoadApp(std::unique_ptr<AppEngine> app) {
  LASTCPU_CHECK(app != nullptr, "null app engine");
  app_ = std::move(app);
  app_ready_ = false;
  if (state() == State::kAlive) {
    app_->Start([this](Status s) {
      app_ready_ = s.ok();
      TraceEvent("app-start", s.ToString());
    });
  }
}

void SmartNic::OnReset() {
  dev::Device::OnReset();
  // Every app session died with the device; OnAlive relaunches them once
  // self-test completes.
  app_ready_ = false;
}

void SmartNic::OnAlive() {
  if (app_ != nullptr && !app_ready_) {
    app_->Start([this](Status s) {
      app_ready_ = s.ok();
      TraceEvent("app-start", s.ToString());
    });
  }
}

sim::SimTime SmartNic::OccupyCore(sim::Duration cost) {
  auto it = std::min_element(core_busy_until_.begin(), core_busy_until_.end());
  sim::SimTime start = std::max(simulator()->Now(), *it);
  sim::SimTime done = start + cost;
  *it = done;
  return done;
}

void SmartNic::OnDatagram(net::EndpointId from, std::vector<uint8_t> payload) {
  if (state() != State::kAlive || app_ == nullptr || !app_ready_) {
    ++requests_dropped_;
    stats().GetCounter("datagrams_dropped").Increment();
    return;
  }
  // Parse + dispatch on an embedded core.
  sim::SimTime ready = OccupyCore(config_.request_cost);
  simulator()->ScheduleAt(ready, [this, from, payload = std::move(payload)]() mutable {
    if (state() != State::kAlive || !app_ready_) {
      ++requests_dropped_;
      return;
    }
    ++requests_handled_;
    stats().GetCounter("requests").Increment();
    app_->HandleRequest(std::move(payload), [this, from](std::vector<uint8_t> response) {
      if (state() != State::kAlive) {
        return;  // died before responding
      }
      network_->Send(endpoint_, from, std::move(response));
    });
  });
}

void SmartNic::OnDoorbell(DeviceId from, uint64_t value) {
  if (app_ != nullptr && app_->HandleDoorbell(from, value)) {
    return;
  }
  stats().GetCounter("unclaimed_doorbells").Increment();
}

void SmartNic::OnPeerFailed(DeviceId device) {
  if (app_ != nullptr) {
    app_->OnPeerFailed(device);
  }
}

void SmartNic::OnPeerPermanentlyFailed(DeviceId device) {
  if (app_ != nullptr) {
    app_->OnPeerPermanentlyFailed(device);
  }
}

}  // namespace lastcpu::nicdev
