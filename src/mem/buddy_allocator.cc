#include "src/mem/buddy_allocator.h"

#include <bit>

#include "src/base/check.h"

namespace lastcpu::mem {

BuddyAllocator::BuddyAllocator(uint64_t num_frames)
    : num_frames_(num_frames), free_frames_(num_frames), free_lists_(kMaxOrder + 1) {
  LASTCPU_CHECK(num_frames > 0, "empty buddy allocator");
  LASTCPU_CHECK(num_frames < (uint64_t{1} << kMaxOrder), "buddy range too large");
  // Tile [0, num_frames) with maximal naturally-aligned power-of-two blocks.
  uint64_t frame = 0;
  while (frame < num_frames_) {
    int align_order = frame == 0 ? kMaxOrder : std::countr_zero(frame);
    uint64_t remaining = num_frames_ - frame;
    int fit_order = 63 - std::countl_zero(remaining);
    int order = std::min(align_order, fit_order);
    if (order > kMaxOrder) {
      order = kMaxOrder;
    }
    free_lists_[static_cast<size_t>(order)].insert(frame);
    frame += uint64_t{1} << order;
  }
}

int BuddyAllocator::OrderForCount(uint64_t count) {
  LASTCPU_CHECK(count > 0, "allocating zero frames");
  return std::bit_width(count - 1);
}

Result<uint64_t> BuddyAllocator::AllocateOrder(int order) {
  int available = order;
  while (available <= kMaxOrder && free_lists_[static_cast<size_t>(available)].empty()) {
    ++available;
  }
  if (available > kMaxOrder) {
    return ResourceExhausted("out of physical memory");
  }
  // Pop the lowest-address block of the available order.
  auto it = free_lists_[static_cast<size_t>(available)].begin();
  uint64_t frame = *it;
  free_lists_[static_cast<size_t>(available)].erase(it);
  // Split down to the requested order, returning upper halves to free lists.
  while (available > order) {
    --available;
    uint64_t buddy = frame + (uint64_t{1} << available);
    free_lists_[static_cast<size_t>(available)].insert(buddy);
  }
  return frame;
}

Result<uint64_t> BuddyAllocator::Allocate(uint64_t count) {
  int order = OrderForCount(count);
  if (order > kMaxOrder || (uint64_t{1} << order) > num_frames_) {
    return ResourceExhausted("request exceeds memory size");
  }
  auto frame = AllocateOrder(order);
  if (!frame.ok()) {
    return frame.status();
  }
  allocated_[*frame] = order;
  free_frames_ -= uint64_t{1} << order;
  return *frame;
}

Status BuddyAllocator::Free(uint64_t first_frame, uint64_t count) {
  auto it = allocated_.find(first_frame);
  if (it == allocated_.end()) {
    return InvalidArgument("freeing unallocated block");
  }
  int order = it->second;
  if (OrderForCount(count) != order) {
    return InvalidArgument("free size does not match allocation");
  }
  allocated_.erase(it);
  free_frames_ += uint64_t{1} << order;

  // Coalesce with the buddy while it is free and within range.
  uint64_t frame = first_frame;
  while (order < kMaxOrder) {
    uint64_t buddy = frame ^ (uint64_t{1} << order);
    auto& list = free_lists_[static_cast<size_t>(order)];
    auto buddy_it = list.find(buddy);
    if (buddy_it == list.end() || buddy + (uint64_t{1} << order) > num_frames_) {
      break;
    }
    list.erase(buddy_it);
    frame = std::min(frame, buddy);
    ++order;
  }
  free_lists_[static_cast<size_t>(order)].insert(frame);
  return OkStatus();
}

Status BuddyAllocator::Reserve(uint64_t first_frame, uint64_t count) {
  int order = OrderForCount(count);
  uint64_t size = uint64_t{1} << order;
  if (first_frame % size != 0 || first_frame + size > num_frames_) {
    return InvalidArgument("reserve target misaligned or out of range");
  }
  // Find the free block containing the target: walk up through the orders a
  // covering block could sit at.
  int found = -1;
  uint64_t found_frame = 0;
  for (int o = order; o <= kMaxOrder; ++o) {
    uint64_t candidate = first_frame & ~((uint64_t{1} << o) - 1);
    if (free_lists_[static_cast<size_t>(o)].contains(candidate)) {
      found = o;
      found_frame = candidate;
      break;
    }
  }
  if (found < 0) {
    return FailedPrecondition("reserve target not free");
  }
  free_lists_[static_cast<size_t>(found)].erase(found_frame);
  // Split down, keeping the half that contains the target and freeing the
  // other half, until the block is exactly the requested order.
  while (found > order) {
    --found;
    uint64_t half = uint64_t{1} << found;
    if (first_frame >= found_frame + half) {
      free_lists_[static_cast<size_t>(found)].insert(found_frame);
      found_frame += half;
    } else {
      free_lists_[static_cast<size_t>(found)].insert(found_frame + half);
    }
  }
  allocated_[found_frame] = order;
  free_frames_ -= size;
  return OkStatus();
}

uint64_t BuddyAllocator::LargestFreeBlock() const {
  for (int order = kMaxOrder; order >= 0; --order) {
    if (!free_lists_[static_cast<size_t>(order)].empty()) {
      return uint64_t{1} << order;
    }
  }
  return 0;
}

double BuddyAllocator::FragmentationRatio() const {
  if (free_frames_ == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(LargestFreeBlock()) / static_cast<double>(free_frames_);
}

}  // namespace lastcpu::mem
