#include "src/mem/physical_memory.h"

#include <algorithm>
#include <cstring>

#include "src/base/check.h"

namespace lastcpu::mem {

PhysicalMemory::PhysicalMemory(uint64_t bytes) : storage_(PageCeil(bytes), 0) {
  LASTCPU_CHECK(bytes > 0, "zero-size physical memory");
}

void PhysicalMemory::Write(PhysAddr addr, std::span<const uint8_t> data) {
  LASTCPU_CHECK(addr.raw + data.size() <= storage_.size(),
                "physical write out of range: addr=%llx len=%zu",
                static_cast<unsigned long long>(addr.raw), data.size());
  std::memcpy(storage_.data() + addr.raw, data.data(), data.size());
}

void PhysicalMemory::Read(PhysAddr addr, std::span<uint8_t> out) const {
  LASTCPU_CHECK(addr.raw + out.size() <= storage_.size(),
                "physical read out of range: addr=%llx len=%zu",
                static_cast<unsigned long long>(addr.raw), out.size());
  std::memcpy(out.data(), storage_.data() + addr.raw, out.size());
}

void PhysicalMemory::ZeroFrame(uint64_t frame) {
  LASTCPU_CHECK(frame < num_frames(), "zeroing frame out of range");
  std::memset(storage_.data() + (frame << kPageShift), 0, kPageSize);
}

uint8_t PhysicalMemory::ReadByte(PhysAddr addr) const {
  LASTCPU_CHECK(addr.raw < storage_.size(), "byte read out of range");
  return storage_[addr.raw];
}

void PhysicalMemory::WriteByte(PhysAddr addr, uint8_t value) {
  LASTCPU_CHECK(addr.raw < storage_.size(), "byte write out of range");
  storage_[addr.raw] = value;
}

uint64_t PhysicalMemory::ReadU64(PhysAddr addr) const {
  uint8_t buf[8];
  Read(addr, buf);
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | buf[i];
  }
  return v;
}

void PhysicalMemory::WriteU64(PhysAddr addr, uint64_t value) {
  uint8_t buf[8];
  for (auto& b : buf) {
    b = static_cast<uint8_t>(value);
    value >>= 8;
  }
  Write(addr, buf);
}

}  // namespace lastcpu::mem
