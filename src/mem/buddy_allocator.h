// Binary buddy allocator over physical page frames.
//
// The memory controller device uses this to manage DRAM. Classic power-of-two
// buddy scheme: O(log n) alloc/free, aggressive coalescing, exact accounting.
#ifndef SRC_MEM_BUDDY_ALLOCATOR_H_
#define SRC_MEM_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"

namespace lastcpu::mem {

class BuddyAllocator {
 public:
  // Manages frames [0, num_frames). num_frames need not be a power of two;
  // the range is tiled with maximal power-of-two blocks.
  explicit BuddyAllocator(uint64_t num_frames);

  // Allocates `count` contiguous frames (rounded up to the next power of
  // two). Returns the first frame number.
  Result<uint64_t> Allocate(uint64_t count);

  // Frees a block previously returned by Allocate with the same count.
  Status Free(uint64_t first_frame, uint64_t count);

  // Claims the specific block [first_frame, first_frame + 2^order(count)) —
  // the lease-rebuild path: a restarted controller re-admits regions its
  // clients still hold at their original addresses. `first_frame` must be
  // naturally aligned for the rounded count (as every Allocate result is).
  // Fails with kFailedPrecondition if any part of the block is allocated.
  Status Reserve(uint64_t first_frame, uint64_t count);

  uint64_t total_frames() const { return num_frames_; }
  uint64_t free_frames() const { return free_frames_; }
  uint64_t allocated_frames() const { return num_frames_ - free_frames_; }

  // Largest contiguous block currently allocatable, in frames.
  uint64_t LargestFreeBlock() const;

  // External fragmentation in [0,1]: 1 - largest_free_block / free_frames.
  double FragmentationRatio() const;

 private:
  static constexpr int kMaxOrder = 32;

  static int OrderForCount(uint64_t count);

  // Splits blocks until one of exactly `order` is free; returns its frame.
  Result<uint64_t> AllocateOrder(int order);

  uint64_t num_frames_;
  uint64_t free_frames_;
  // free_lists_[order] holds first-frame numbers of free blocks of 2^order
  // frames; ordered sets give deterministic (lowest-address-first) placement.
  std::vector<std::set<uint64_t>> free_lists_;
  // Allocated block -> order, for Free() validation.
  std::unordered_map<uint64_t, int> allocated_;
};

}  // namespace lastcpu::mem

#endif  // SRC_MEM_BUDDY_ALLOCATOR_H_
