// The machine's DRAM: a flat physical address space with byte-level access.
//
// All data-plane traffic (VIRTIO rings, file contents, KVS records) ultimately
// lands here, always via IOMMU-translated accesses — no component other than
// the memory controller touches physical addresses directly.
#ifndef SRC_MEM_PHYSICAL_MEMORY_H_
#define SRC_MEM_PHYSICAL_MEMORY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"

namespace lastcpu::mem {

class PhysicalMemory {
 public:
  // Size is rounded up to whole pages.
  explicit PhysicalMemory(uint64_t bytes);

  uint64_t size_bytes() const { return storage_.size(); }
  uint64_t num_frames() const { return storage_.size() >> kPageShift; }

  // Bounds-checked raw access. Out-of-range is a wiring bug, so it aborts
  // rather than returning a status: hardware cannot address past the DIMMs.
  void Write(PhysAddr addr, std::span<const uint8_t> data);
  void Read(PhysAddr addr, std::span<uint8_t> out) const;

  // Zero-fills a frame (done on allocation so applications never observe
  // another application's stale data).
  void ZeroFrame(uint64_t frame);

  uint8_t ReadByte(PhysAddr addr) const;
  void WriteByte(PhysAddr addr, uint8_t value);

  uint64_t ReadU64(PhysAddr addr) const;
  void WriteU64(PhysAddr addr, uint64_t value);

 private:
  std::vector<uint8_t> storage_;
};

}  // namespace lastcpu::mem

#endif  // SRC_MEM_PHYSICAL_MEMORY_H_
