// Access control service (paper Sec. 4): the 'login' program and 'passwd'
// file of the CPU-less machine, hosted on any self-managing device (typically
// the smart SSD, next to the files it protects).
//
// Users authenticate with a secret and receive an expiring token; services
// (file system, loader) validate tokens before honoring sensitive requests.
// Hashing is FNV-based for simulation purposes — this models the *protocol*,
// not real cryptography (documented in DESIGN.md).
#ifndef SRC_AUTH_AUTH_SERVICE_H_
#define SRC_AUTH_AUTH_SERVICE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/dev/service.h"
#include "src/sim/simulator.h"

namespace lastcpu::auth {

// Salted FNV-1a, the stand-in for a real password hash.
uint64_t HashSecret(const std::string& secret, uint64_t salt);

struct AuthConfig {
  sim::Duration token_lifetime = sim::Duration::Seconds(3600);
};

class AuthService : public dev::Service {
 public:
  AuthService(DeviceId provider, sim::Simulator* simulator, AuthConfig config = {});

  // Registers a user (the 'passwd file' entry). Local administrative call —
  // in a deployment this would itself be loader-gated.
  void AddUser(const std::string& user, const std::string& secret);

  // Handles a login request; issues a token on success.
  Result<proto::AuthResponse> HandleAuth(const proto::AuthRequest& request);

  // Token check used by other services. Expired or unknown tokens fail.
  bool ValidateToken(uint64_t token) const;
  // As above, also returning who the token belongs to.
  std::optional<std::string> UserForToken(uint64_t token) const;

  // Drops a token before its expiry (logout).
  void RevokeToken(uint64_t token);

  // Auth has no streaming instances: each login is a single exchange.
  Result<proto::OpenResponse> Open(DeviceId client, const proto::OpenRequest& request) override;

  // Accepts kAuthRequest messages routed by the hosting device.
  std::optional<Result<proto::Payload>> HandleMessage(const proto::Message& message) override;

  size_t active_tokens() const;

 private:
  struct UserEntry {
    uint64_t salt = 0;
    uint64_t secret_hash = 0;
  };
  struct TokenEntry {
    std::string user;
    sim::SimTime expiry;
  };

  sim::Simulator* simulator_;
  AuthConfig config_;
  std::map<std::string, UserEntry> users_;
  mutable std::map<uint64_t, TokenEntry> tokens_;  // mutable: lookups prune expired
  uint64_t next_salt_ = 0x1234;
  uint64_t token_counter_ = 0;
};

}  // namespace lastcpu::auth

#endif  // SRC_AUTH_AUTH_SERVICE_H_
