// Client-side login helper: the one way to authenticate against an
// AuthService over the bus. Issues the AuthRequest through the host device's
// RpcEndpoint, so logins get deadlines, typed transport errors, and abort on
// provider failure like every other control-plane transaction.
#ifndef SRC_AUTH_AUTH_CLIENT_H_
#define SRC_AUTH_AUTH_CLIENT_H_

#include <string>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/dev/device.h"

namespace lastcpu::auth {

// The issued credential: token plus its absolute expiry.
struct Login {
  uint64_t token = 0;
  uint64_t expiry_nanos = 0;
};

// Authenticates `user` against the auth service hosted on `provider`.
// Completes with the credential, or with the typed failure
// (kPermissionDenied on bad secret, kTimedOut / kUnavailable / kAborted on
// transport failure).
void LoginUser(dev::Device* host, DeviceId provider, const std::string& user,
               const std::string& secret, Callback<Login> done);

}  // namespace lastcpu::auth

#endif  // SRC_AUTH_AUTH_CLIENT_H_
