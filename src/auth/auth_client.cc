#include "src/auth/auth_client.h"

#include <utility>

#include "src/base/check.h"

namespace lastcpu::auth {

void LoginUser(dev::Device* host, DeviceId provider, const std::string& user,
               const std::string& secret, Callback<Login> done) {
  LASTCPU_CHECK(host != nullptr && done != nullptr, "login needs a host and a callback");
  host->rpc().Call<proto::AuthResponse>(
      provider, proto::AuthRequest{user, secret},
      [done = std::move(done)](Result<proto::AuthResponse> response) {
        if (!response.ok()) {
          done(response.status());
          return;
        }
        done(Login{response->token, response->expiry_nanos});
      });
}

}  // namespace lastcpu::auth
