#include "src/auth/auth_service.h"

#include "src/base/check.h"

namespace lastcpu::auth {

uint64_t HashSecret(const std::string& secret, uint64_t salt) {
  uint64_t h = 0xCBF29CE484222325ULL ^ salt;
  for (char c : secret) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  // One more mixing round so short secrets spread.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

AuthService::AuthService(DeviceId provider, sim::Simulator* simulator, AuthConfig config)
    : Service(proto::ServiceDescriptor{provider, proto::ServiceType::kAuth, "auth", 0}),
      simulator_(simulator),
      config_(config) {
  LASTCPU_CHECK(simulator != nullptr, "auth service needs a simulator for expiry");
}

void AuthService::AddUser(const std::string& user, const std::string& secret) {
  UserEntry entry;
  entry.salt = next_salt_ = next_salt_ * 6364136223846793005ULL + 1442695040888963407ULL;
  entry.secret_hash = HashSecret(secret, entry.salt);
  users_[user] = entry;
}

Result<proto::AuthResponse> AuthService::HandleAuth(const proto::AuthRequest& request) {
  auto it = users_.find(request.user);
  if (it == users_.end()) {
    // Same error as a wrong secret: do not leak which users exist.
    return PermissionDenied("authentication failed");
  }
  if (HashSecret(request.secret, it->second.salt) != it->second.secret_hash) {
    return PermissionDenied("authentication failed");
  }
  // Token value mixes a counter with the user hash; uniqueness is what
  // matters here, not unforgeability (see header).
  uint64_t token = HashSecret(request.user, ++token_counter_ ^ 0xA5A5A5A5A5A5A5A5ULL);
  sim::SimTime expiry = simulator_->Now() + config_.token_lifetime;
  tokens_[token] = TokenEntry{request.user, expiry};
  return proto::AuthResponse{token, expiry.nanos()};
}

bool AuthService::ValidateToken(uint64_t token) const { return UserForToken(token).has_value(); }

std::optional<std::string> AuthService::UserForToken(uint64_t token) const {
  auto it = tokens_.find(token);
  if (it == tokens_.end()) {
    return std::nullopt;
  }
  if (it->second.expiry <= simulator_->Now()) {
    tokens_.erase(it);
    return std::nullopt;
  }
  return it->second.user;
}

void AuthService::RevokeToken(uint64_t token) { tokens_.erase(token); }

Result<proto::OpenResponse> AuthService::Open(DeviceId client, const proto::OpenRequest& request) {
  (void)client;
  (void)request;
  return Unimplemented("auth uses AuthRequest messages, not open");
}

std::optional<Result<proto::Payload>> AuthService::HandleMessage(const proto::Message& message) {
  if (!message.Is<proto::AuthRequest>()) {
    return std::nullopt;
  }
  auto response = HandleAuth(message.As<proto::AuthRequest>());
  if (!response.ok()) {
    return Result<proto::Payload>(response.status());
  }
  return Result<proto::Payload>(proto::Payload(*response));
}

size_t AuthService::active_tokens() const {
  size_t count = 0;
  for (const auto& [token, entry] : tokens_) {
    if (entry.expiry > simulator_->Now()) {
      ++count;
    }
  }
  return count;
}

}  // namespace lastcpu::auth
