// Radix page table, one per (device, PASID) pair.
//
// 3-level, 512-ary (9 bits per level, 4 KiB pages -> 39-bit virtual space),
// mirroring the x86/SMMU structures real IOMMUs walk. The walk cost model in
// the fabric charges per level touched.
#ifndef SRC_IOMMU_PAGE_TABLE_H_
#define SRC_IOMMU_PAGE_TABLE_H_

#include <array>
#include <cstdint>
#include <memory>

#include "src/base/status.h"
#include "src/base/types.h"

namespace lastcpu::iommu {

// A resolved translation for one page.
struct PteValue {
  uint64_t pframe = 0;
  Access access = Access::kNone;
};

class PageTable {
 public:
  static constexpr int kLevels = 3;
  static constexpr int kBitsPerLevel = 9;
  static constexpr uint64_t kFanout = uint64_t{1} << kBitsPerLevel;
  // Virtual page numbers must fit in kLevels * kBitsPerLevel bits.
  static constexpr uint64_t kMaxVpage = (uint64_t{1} << (kLevels * kBitsPerLevel)) - 1;

  PageTable();
  ~PageTable();
  PageTable(const PageTable&) = delete;
  PageTable& operator=(const PageTable&) = delete;

  // Installs a mapping. Remapping an already-present page is rejected: the
  // owner must unmap first (prevents silent aliasing).
  Status Map(uint64_t vpage, uint64_t pframe, Access access);

  // Removes a mapping; interior nodes are freed when they empty out.
  Status Unmap(uint64_t vpage);

  // Walks the table. On success also reports how many levels were touched
  // (always kLevels for the radix walk; exposed for the cost model).
  Result<PteValue> Lookup(uint64_t vpage) const;

  // Narrows the permissions on an existing mapping (used by revoke-downgrade).
  Status SetAccess(uint64_t vpage, Access access);

  uint64_t mapped_pages() const { return mapped_pages_; }
  // Interior + leaf node count, a proxy for table memory footprint.
  uint64_t node_count() const { return node_count_; }

 private:
  struct Node;
  struct Leaf;

  static int IndexAt(uint64_t vpage, int level);

  std::unique_ptr<Node> root_;
  uint64_t mapped_pages_ = 0;
  uint64_t node_count_ = 0;
};

}  // namespace lastcpu::iommu

#endif  // SRC_IOMMU_PAGE_TABLE_H_
