// Set-associative translation lookaside buffer for the IOMMU, keyed by
// (PASID, virtual page). LRU replacement within each set.
#ifndef SRC_IOMMU_TLB_H_
#define SRC_IOMMU_TLB_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/types.h"
#include "src/iommu/page_table.h"

namespace lastcpu::iommu {

struct TlbConfig {
  uint32_t num_sets = 16;
  uint32_t ways = 4;
};

class Tlb {
 public:
  explicit Tlb(TlbConfig config);

  // Returns the cached translation and refreshes its recency. Defined inline:
  // this is on the per-access translation path, hot enough that the
  // cross-TU call was visible in profiles.
  std::optional<PteValue> Lookup(Pasid pasid, uint64_t vpage) {
    size_t base = SetBase(pasid, vpage);
    for (uint32_t way = 0; way < config_.ways; ++way) {
      Entry& e = entries_[base + way];
      if (e.valid && e.pasid == pasid && e.vpage == vpage) {
        e.last_used = ++clock_;
        ++hits_;
        return e.value;
      }
    }
    ++misses_;
    return std::nullopt;
  }

  // Inserts (possibly evicting the set's LRU entry).
  void Insert(Pasid pasid, uint64_t vpage, PteValue value);

  // Invalidation: single page, whole address space, or everything. The bus
  // shoots down TLBs on unmap/revoke, exactly like an IOTLB invalidation
  // command in a real IOMMU.
  void InvalidatePage(Pasid pasid, uint64_t vpage);
  void InvalidatePasid(Pasid pasid);
  void InvalidateAll();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double HitRate() const;

  uint32_t capacity() const { return config_.num_sets * config_.ways; }

 private:
  struct Entry {
    bool valid = false;
    Pasid pasid;
    uint64_t vpage = 0;
    PteValue value;
    uint64_t last_used = 0;
  };

  size_t SetBase(Pasid pasid, uint64_t vpage) const {
    // Mix PASID into the index so address spaces spread across sets.
    uint64_t h = vpage ^ (static_cast<uint64_t>(pasid.value()) * 0x9E3779B97F4A7C15ULL);
    return static_cast<size_t>(h & (config_.num_sets - 1)) * config_.ways;
  }

  TlbConfig config_;
  std::vector<Entry> entries_;
  uint64_t clock_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace lastcpu::iommu

#endif  // SRC_IOMMU_TLB_H_
