#include "src/iommu/tlb.h"

#include "src/base/check.h"

namespace lastcpu::iommu {

Tlb::Tlb(TlbConfig config) : config_(config) {
  LASTCPU_CHECK(config.num_sets > 0 && config.ways > 0, "empty TLB geometry");
  LASTCPU_CHECK((config.num_sets & (config.num_sets - 1)) == 0, "num_sets must be a power of two");
  entries_.resize(static_cast<size_t>(config.num_sets) * config.ways);
}

void Tlb::Insert(Pasid pasid, uint64_t vpage, PteValue value) {
  size_t base = SetBase(pasid, vpage);
  Entry* victim = &entries_[base];
  for (uint32_t way = 0; way < config_.ways; ++way) {
    Entry& e = entries_[base + way];
    if (e.valid && e.pasid == pasid && e.vpage == vpage) {
      // Refresh an existing entry in place.
      e.value = value;
      e.last_used = ++clock_;
      return;
    }
    if (!e.valid) {
      victim = &e;
    } else if (victim->valid && e.last_used < victim->last_used) {
      victim = &e;
    }
  }
  victim->valid = true;
  victim->pasid = pasid;
  victim->vpage = vpage;
  victim->value = value;
  victim->last_used = ++clock_;
}

void Tlb::InvalidatePage(Pasid pasid, uint64_t vpage) {
  size_t base = SetBase(pasid, vpage);
  for (uint32_t way = 0; way < config_.ways; ++way) {
    Entry& e = entries_[base + way];
    if (e.valid && e.pasid == pasid && e.vpage == vpage) {
      e.valid = false;
    }
  }
}

void Tlb::InvalidatePasid(Pasid pasid) {
  for (Entry& e : entries_) {
    if (e.valid && e.pasid == pasid) {
      e.valid = false;
    }
  }
}

void Tlb::InvalidateAll() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

double Tlb::HitRate() const {
  uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace lastcpu::iommu
