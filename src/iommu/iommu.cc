#include "src/iommu/iommu.h"

#include <cstdio>

namespace lastcpu::iommu {

std::string FaultInfo::ToString() const {
  const char* kind_name = "not-mapped";
  if (kind == Kind::kPermission) {
    kind_name = "permission";
  } else if (kind == Kind::kBadAddress) {
    kind_name = "bad-address";
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "fault(%s pasid=%u vaddr=0x%llx access=%s)", kind_name,
                pasid.value(), static_cast<unsigned long long>(vaddr.raw),
                lastcpu::ToString(attempted).c_str());
  return buf;
}

Iommu::Iommu(DeviceId owner, TlbConfig tlb_config) : owner_(owner), tlb_(tlb_config) {}

PageTable* Iommu::FindTable(Pasid pasid) const {
  auto it = tables_.find(pasid);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Iommu::Map(const ProgrammingKey& key, Pasid pasid, uint64_t vpage, uint64_t pframe,
                  Access access) {
  (void)key;
  auto& table = tables_[pasid];
  if (!table) {
    table = std::make_unique<PageTable>();
  }
  return table->Map(vpage, pframe, access);
}

Status Iommu::Unmap(const ProgrammingKey& key, Pasid pasid, uint64_t vpage) {
  (void)key;
  PageTable* table = FindTable(pasid);
  if (table == nullptr) {
    return NotFound("no such address space");
  }
  Status status = table->Unmap(vpage);
  if (status.ok()) {
    tlb_.InvalidatePage(pasid, vpage);
    if (table->mapped_pages() == 0) {
      tables_.erase(pasid);
    }
  }
  return status;
}

void Iommu::RemoveAddressSpace(const ProgrammingKey& key, Pasid pasid) {
  (void)key;
  tables_.erase(pasid);
  tlb_.InvalidatePasid(pasid);
}

void Iommu::Reset(const ProgrammingKey& key) {
  (void)key;
  tables_.clear();
  tlb_.InvalidateAll();
}

bool Iommu::WalkAndFill(Pasid pasid, VirtAddr vaddr, Access wanted, Translation* out) {
  PageTable* table = FindTable(pasid);
  if (table == nullptr) {
    return false;
  }
  auto pte = table->Lookup(vaddr.page());
  if (!pte.ok()) {
    return false;
  }
  // Fill the TLB before the permission check, as a real walker would: the
  // entry is valid, the access just isn't allowed.
  tlb_.Insert(pasid, vaddr.page(), *pte);
  if (!AccessCovers(pte->access, wanted)) {
    return false;
  }
  *out = Translation{PhysAddr((pte->pframe << kPageShift) | vaddr.offset()), false,
                     PageTable::kLevels};
  return true;
}

Status Iommu::TranslateFault(Pasid pasid, VirtAddr vaddr, Access wanted) {
  ++faults_;
  // Re-derive the fault kind from the tables (not the TLB — its hit/miss
  // counters were already charged by TryTranslate).
  FaultInfo::Kind kind = FaultInfo::Kind::kNotMapped;
  uint64_t vpage = vaddr.page();
  if (vpage > PageTable::kMaxVpage) {
    kind = FaultInfo::Kind::kBadAddress;
  } else if (PageTable* table = FindTable(pasid)) {
    auto pte = table->Lookup(vpage);
    if (pte.ok()) {
      kind = FaultInfo::Kind::kPermission;
    }
  }
  FaultInfo info{kind, pasid, vaddr, wanted};
  if (fault_handler_) {
    fault_handler_(info);
  }
  return PermissionDenied(info.ToString());
}

Result<Translation> Iommu::Translate(Pasid pasid, VirtAddr vaddr, Access wanted) {
  Translation translation;
  if (TryTranslate(pasid, vaddr, wanted, &translation)) {
    return translation;
  }
  return TranslateFault(pasid, vaddr, wanted);
}

uint64_t Iommu::mapped_pages(Pasid pasid) const {
  PageTable* table = FindTable(pasid);
  return table == nullptr ? 0 : table->mapped_pages();
}

}  // namespace lastcpu::iommu
