// The per-device IOMMU: the cornerstone of data isolation (paper Sec. 2.2).
//
// Every data-plane access a device makes is translated here from a
// (PASID, virtual address) to a physical address. Programming the tables is a
// *privileged* operation: only the holder of a ProgrammingKey — minted
// exclusively by the system bus (or the baseline kernel) — can change
// mappings. A device can never map its own IOMMU, which is precisely the
// security argument of the paper ("it is not a good idea for a device to be
// responsible for its own mappings").
#ifndef SRC_IOMMU_IOMMU_H_
#define SRC_IOMMU_IOMMU_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/iommu/page_table.h"
#include "src/iommu/tlb.h"

namespace lastcpu::bus {
class SystemBus;
}
namespace lastcpu::baseline {
class CentralKernel;
}

namespace lastcpu::iommu {

// Capability token for IOMMU programming. Only the system bus and the
// baseline kernel can construct one; everything else must go through them.
class ProgrammingKey {
 public:
  // Test-only escape hatch, named loudly so it cannot pass review unnoticed.
  static ProgrammingKey CreateForTesting() { return ProgrammingKey(); }

 private:
  ProgrammingKey() = default;
  friend class lastcpu::bus::SystemBus;
  friend class lastcpu::baseline::CentralKernel;
};

// Why a translation failed; delivered to the attached device (paper Sec. 4:
// "the IOMMU would deliver any faults to its attached device").
struct FaultInfo {
  enum class Kind : uint8_t {
    kNotMapped,         // no translation for (pasid, vaddr)
    kPermission,        // mapped, but the access kind is not permitted
    kBadAddress,        // vaddr outside the translatable range
  };
  Kind kind = Kind::kNotMapped;
  Pasid pasid;
  VirtAddr vaddr;
  Access attempted = Access::kNone;

  std::string ToString() const;
};

// Result of a successful translation, including cost-model inputs.
struct Translation {
  PhysAddr paddr;
  bool tlb_hit = false;
  int levels_walked = 0;  // 0 on TLB hit, PageTable::kLevels on a walk
};

class Iommu {
 public:
  using FaultHandler = std::function<void(const FaultInfo&)>;

  explicit Iommu(DeviceId owner, TlbConfig tlb_config = TlbConfig{});

  DeviceId owner() const { return owner_; }

  // --- privileged programming interface (system bus only) -----------------

  Status Map(const ProgrammingKey& key, Pasid pasid, uint64_t vpage, uint64_t pframe,
             Access access);
  Status Unmap(const ProgrammingKey& key, Pasid pasid, uint64_t vpage);
  // Drops an entire address space (application teardown).
  void RemoveAddressSpace(const ProgrammingKey& key, Pasid pasid);

  // Clears every table and the TLB (device reset: stale mappings must not
  // survive a failed device's restart).
  void Reset(const ProgrammingKey& key);

  // --- data-path interface (the attached device) ---------------------------

  // Translates one access. On failure the fault handler (if set) is invoked
  // before the error returns — mirroring a fault interrupt raised toward the
  // device while the DMA engine sees an abort.
  Result<Translation> Translate(Pasid pasid, VirtAddr vaddr, Access wanted);

  // Hot-path translation without the Result boxing: on success fills `out`
  // and returns true, having charged exactly the counters Translate would
  // (translation count, TLB hit/miss, TLB fill on a walk). On failure it
  // returns false with no fault accounting done yet — the caller must follow
  // up with TranslateFault (once) to classify the fault, run the device's
  // fault handler, and obtain the error. Translate() is precisely that pair.
  bool TryTranslate(Pasid pasid, VirtAddr vaddr, Access wanted, Translation* out) {
    ++translations_;
    uint64_t vpage = vaddr.page();
    if (vpage > PageTable::kMaxVpage) {
      return false;
    }
    if (auto cached = tlb_.Lookup(pasid, vpage)) {
      if (!AccessCovers(cached->access, wanted)) {
        return false;
      }
      *out = Translation{PhysAddr((cached->pframe << kPageShift) | vaddr.offset()), true, 0};
      return true;
    }
    return WalkAndFill(pasid, vaddr, wanted, out);
  }

  // The cold half of a failed TryTranslate: fault bookkeeping, the attached
  // device's fault handler, and the error status.
  Status TranslateFault(Pasid pasid, VirtAddr vaddr, Access wanted);

  // Installs the attached device's fault handler.
  void SetFaultHandler(FaultHandler handler) { fault_handler_ = std::move(handler); }

  // --- observability --------------------------------------------------------

  uint64_t mapped_pages(Pasid pasid) const;
  uint64_t translations() const { return translations_; }
  uint64_t faults() const { return faults_; }
  const Tlb& tlb() const { return tlb_; }

 private:
  PageTable* FindTable(Pasid pasid) const;
  // TLB-miss half of TryTranslate: radix walk, TLB fill, permission check.
  bool WalkAndFill(Pasid pasid, VirtAddr vaddr, Access wanted, Translation* out);

  DeviceId owner_;
  Tlb tlb_;
  std::unordered_map<Pasid, std::unique_ptr<PageTable>> tables_;
  FaultHandler fault_handler_;
  uint64_t translations_ = 0;
  uint64_t faults_ = 0;
};

}  // namespace lastcpu::iommu

#endif  // SRC_IOMMU_IOMMU_H_
