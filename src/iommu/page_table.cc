#include "src/iommu/page_table.h"

#include <utility>

#include "src/base/check.h"

namespace lastcpu::iommu {

// Leaf level: 512 PTEs. `present` doubles as validity.
struct PageTable::Leaf {
  struct Pte {
    bool present = false;
    PteValue value;
  };
  std::array<Pte, kFanout> ptes{};
  uint64_t used = 0;
};

// Interior node: level 2 points at level-1 nodes, level 1 points at leaves.
struct PageTable::Node {
  std::array<std::unique_ptr<Node>, kFanout> children{};
  std::array<std::unique_ptr<Leaf>, kFanout> leaves{};
  uint64_t used = 0;
};

PageTable::PageTable() : root_(std::make_unique<Node>()), node_count_(1) {}

PageTable::~PageTable() = default;

int PageTable::IndexAt(uint64_t vpage, int level) {
  // level kLevels-1 is the root index; level 0 selects the leaf PTE.
  return static_cast<int>((vpage >> (level * kBitsPerLevel)) & (kFanout - 1));
}

Status PageTable::Map(uint64_t vpage, uint64_t pframe, Access access) {
  if (vpage > kMaxVpage) {
    return InvalidArgument("virtual page outside 39-bit space");
  }
  if (access == Access::kNone) {
    return InvalidArgument("mapping with no access rights");
  }
  Node* node = root_.get();
  // Descend interior levels (kLevels-1 .. 2 select Node children).
  for (int level = kLevels - 1; level >= 2; --level) {
    int index = IndexAt(vpage, level);
    auto& child = node->children[static_cast<size_t>(index)];
    if (!child) {
      child = std::make_unique<Node>();
      ++node->used;
      ++node_count_;
    }
    node = child.get();
  }
  // Level 1 selects the leaf.
  int leaf_index = IndexAt(vpage, 1);
  auto& leaf = node->leaves[static_cast<size_t>(leaf_index)];
  if (!leaf) {
    leaf = std::make_unique<Leaf>();
    ++node->used;
    ++node_count_;
  }
  auto& pte = leaf->ptes[static_cast<size_t>(IndexAt(vpage, 0))];
  if (pte.present) {
    return AlreadyExists("page already mapped");
  }
  pte.present = true;
  pte.value = PteValue{pframe, access};
  ++leaf->used;
  ++mapped_pages_;
  return OkStatus();
}

Status PageTable::Unmap(uint64_t vpage) {
  if (vpage > kMaxVpage) {
    return InvalidArgument("virtual page outside 39-bit space");
  }
  // Collect the path so empty nodes can be pruned bottom-up.
  Node* path[kLevels];
  path[kLevels - 1] = root_.get();
  Node* node = root_.get();
  for (int level = kLevels - 1; level >= 2; --level) {
    int index = IndexAt(vpage, level);
    Node* child = node->children[static_cast<size_t>(index)].get();
    if (child == nullptr) {
      return NotFound("page not mapped");
    }
    node = child;
    path[level - 1] = child;
  }
  int leaf_index = IndexAt(vpage, 1);
  Leaf* leaf = node->leaves[static_cast<size_t>(leaf_index)].get();
  if (leaf == nullptr) {
    return NotFound("page not mapped");
  }
  auto& pte = leaf->ptes[static_cast<size_t>(IndexAt(vpage, 0))];
  if (!pte.present) {
    return NotFound("page not mapped");
  }
  pte.present = false;
  pte.value = PteValue{};
  --leaf->used;
  --mapped_pages_;

  // Prune: free the leaf if empty, then interior nodes bottom-up.
  if (leaf->used == 0) {
    node->leaves[static_cast<size_t>(leaf_index)].reset();
    --node->used;
    --node_count_;
    // path[level] holds the interior node entered at `level`; root is
    // path[kLevels-1] and is never freed.
    for (int level = 1; level <= kLevels - 2; ++level) {
      Node* child = path[level];
      if (child->used != 0) {
        break;
      }
      Node* parent = path[level + 1];
      parent->children[static_cast<size_t>(IndexAt(vpage, level + 1))].reset();
      --parent->used;
      --node_count_;
    }
  }
  return OkStatus();
}

Result<PteValue> PageTable::Lookup(uint64_t vpage) const {
  if (vpage > kMaxVpage) {
    return InvalidArgument("virtual page outside 39-bit space");
  }
  const Node* node = root_.get();
  for (int level = kLevels - 1; level >= 2; --level) {
    node = node->children[static_cast<size_t>(IndexAt(vpage, level))].get();
    if (node == nullptr) {
      return NotFound("page not mapped");
    }
  }
  const Leaf* leaf = node->leaves[static_cast<size_t>(IndexAt(vpage, 1))].get();
  if (leaf == nullptr) {
    return NotFound("page not mapped");
  }
  const auto& pte = leaf->ptes[static_cast<size_t>(IndexAt(vpage, 0))];
  if (!pte.present) {
    return NotFound("page not mapped");
  }
  return pte.value;
}

Status PageTable::SetAccess(uint64_t vpage, Access access) {
  if (access == Access::kNone) {
    return InvalidArgument("use Unmap to remove a mapping");
  }
  Node* node = root_.get();
  for (int level = kLevels - 1; level >= 2; --level) {
    node = node->children[static_cast<size_t>(IndexAt(vpage, level))].get();
    if (node == nullptr) {
      return NotFound("page not mapped");
    }
  }
  Leaf* leaf = node->leaves[static_cast<size_t>(IndexAt(vpage, 1))].get();
  if (leaf == nullptr) {
    return NotFound("page not mapped");
  }
  auto& pte = leaf->ptes[static_cast<size_t>(IndexAt(vpage, 0))];
  if (!pte.present) {
    return NotFound("page not mapped");
  }
  pte.value.access = access;
  return OkStatus();
}

}  // namespace lastcpu::iommu
