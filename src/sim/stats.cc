#include "src/sim/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/base/check.h"

namespace lastcpu::sim {

Histogram::Histogram() : buckets_(static_cast<size_t>(kRanges) * kSubBuckets, 0) {}

int Histogram::BucketIndex(uint64_t value) {
  // Values below kSubBuckets land in range 0, linearly.
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  int msb = 63 - std::countl_zero(value);
  int range = msb - kSubBucketBits + 1;
  // Sub-bucket: the kSubBucketBits bits below the MSB.
  int sub = static_cast<int>((value >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  return range * kSubBuckets + sub;
}

uint64_t Histogram::BucketMidpoint(int index) {
  int range = index / kSubBuckets;
  int sub = index % kSubBuckets;
  if (range == 0) {
    return static_cast<uint64_t>(sub);
  }
  int msb = range + kSubBucketBits - 1;
  uint64_t base = (uint64_t{1} << msb) | (static_cast<uint64_t>(sub) << (msb - kSubBucketBits));
  uint64_t width = uint64_t{1} << (msb - kSubBucketBits);
  return base + width / 2;
}

void Histogram::Record(uint64_t value) {
  int index = BucketIndex(value);
  LASTCPU_CHECK(index >= 0 && index < static_cast<int>(buckets_.size()), "bucket out of range");
  ++buckets_[static_cast<size_t>(index)];
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  sum_ += static_cast<double>(value);
}

double Histogram::mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Clamp the representative into the observed range for tidy output.
      return std::clamp(BucketMidpoint(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
  sum_ = 0.0;
}

void Histogram::Merge(const Histogram& other) {
  LASTCPU_CHECK(buckets_.size() == other.buckets_.size(), "histogram shape mismatch");
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  LASTCPU_CHECK(buckets_.size() == earlier.buckets_.size(), "histogram shape mismatch");
  Histogram delta;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    uint64_t before = earlier.buckets_[i];
    // A snapshot is always older, so per-bucket counts only grow; guard
    // anyway so a mismatched pair degrades instead of underflowing.
    delta.buckets_[i] = buckets_[i] > before ? buckets_[i] - before : 0;
    delta.count_ += delta.buckets_[i];
  }
  delta.sum_ = std::max(0.0, sum_ - earlier.sum_);
  // min/max cannot be subtracted; recompute representatives from the
  // surviving buckets (bounded by the histogram's relative error).
  for (size_t i = 0; i < delta.buckets_.size(); ++i) {
    if (delta.buckets_[i] == 0) {
      continue;
    }
    uint64_t mid = BucketMidpoint(static_cast<int>(i));
    delta.min_ = std::min(delta.min_, mid);
    delta.max_ = std::max(delta.max_, std::min(mid, max_));
  }
  return delta;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2fus p50=%.2fus p99=%.2fus p99.9=%.2fus max=%.2fus",
                static_cast<unsigned long long>(count_), mean() / 1e3,
                static_cast<double>(p50()) / 1e3, static_cast<double>(p99()) / 1e3,
                static_cast<double>(p999()) / 1e3, static_cast<double>(max()) / 1e3);
  return buf;
}

std::string StatsRegistry::Report(const std::string& prefix) const {
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += prefix + name + ": " + std::to_string(counter.value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += prefix + name + ": " + histogram.Summary() + "\n";
  }
  return out;
}

StatsSnapshot StatsRegistry::Snapshot() const {
  StatsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter.value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram);
  }
  return snap;
}

StatsSnapshot StatsSnapshot::DeltaSince(const StatsSnapshot& earlier) const {
  StatsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    uint64_t before = it == earlier.counters.end() ? 0 : it->second;
    delta.counters.emplace(name, value > before ? value - before : 0);
  }
  for (const auto& [name, histogram] : histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      delta.histograms.emplace(name, histogram);
    } else {
      delta.histograms.emplace(name, histogram.DeltaSince(it->second));
    }
  }
  return delta;
}

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

void StatsSnapshot::WriteJson(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << value;
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"min\":%llu,\"max\":%llu,\"mean\":%.3f,"
                  "\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,\"p999\":%llu}",
                  static_cast<unsigned long long>(histogram.count()),
                  static_cast<unsigned long long>(histogram.min()),
                  static_cast<unsigned long long>(histogram.max()), histogram.mean(),
                  static_cast<unsigned long long>(histogram.p50()),
                  static_cast<unsigned long long>(histogram.p90()),
                  static_cast<unsigned long long>(histogram.p99()),
                  static_cast<unsigned long long>(histogram.p999()));
    os << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << buf;
    first = false;
  }
  os << "}}";
}

std::string StatsSnapshot::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

void StatsRegistry::Reset() {
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
}

}  // namespace lastcpu::sim
