// Deterministic random numbers for workloads and hardware-timing jitter.
//
// xoshiro256** generator plus the distributions the benchmarks need (uniform,
// exponential inter-arrivals, Zipfian key popularity). Seeded explicitly so a
// run is reproducible bit-for-bit.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>
#include <vector>

namespace lastcpu::sim {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (Poisson arrivals).
  double NextExponential(double mean);

  // Fills `out` with uniformly random bytes.
  void Fill(std::vector<uint8_t>& out);

 private:
  uint64_t state_[4];
};

// Zipfian distribution over [0, n) with skew theta, using the rejection-free
// computation from Gray et al. ("Quickly generating billion-record synthetic
// databases"), as used by YCSB. Models hot-key skew for the KVS benchmarks.
class ZipfGenerator {
 public:
  // theta in (0, 1); 0.99 is the YCSB default.
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_RNG_H_
