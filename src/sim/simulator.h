// The discrete-event simulation core.
//
// Every hardware component in the emulator (bus, fabric, devices, NAND dies,
// embedded cores) is driven by callbacks scheduled on one Simulator. Events at
// equal timestamps run in scheduling order, which keeps runs deterministic for
// a fixed seed — a property the tests rely on.
//
// Engine shape (see DESIGN.md "Calendar-queue event core"): events live in
// pooled nodes addressed by generation-tagged EventIds. Near-future events go
// into time-indexed calendar buckets (O(1) schedule for the short delays that
// bus hops, DMA completions, and doorbells generate); the bucket currently
// being drained is a small binary heap; far-future events (daemons, watchdog
// periods) sit in a spill heap until the calendar window reaches them.
// Execution order is globally (timestamp, schedule-seq) — identical to the
// old comparison-heap engine, just cheaper to maintain.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/event_fn.h"
#include "src/sim/time.h"

namespace lastcpu::sim {

// Handle for a scheduled event, usable to cancel it before it fires. The
// generation tag makes a stale handle (event already ran, cancelled, or slot
// reused) a cheap miss instead of undefined behaviour.
class EventId {
 public:
  constexpr EventId() = default;

  constexpr bool valid() const { return generation_ != 0; }

  friend constexpr bool operator==(EventId, EventId) = default;

 private:
  friend class Simulator;
  constexpr EventId(uint32_t slot, uint32_t generation)
      : slot_(slot), generation_(generation) {}

  uint32_t slot_ = 0;
  uint32_t generation_ = 0;
};

// Calendar geometry. The defaults cover a ~2ms near-future window at 512ns
// resolution, which buckets every bus hop, table update, DMA completion, and
// NAND array operation; only multi-millisecond daemons spill to the far heap.
struct CalendarConfig {
  Duration bucket_width = Duration::Nanos(512);
  uint32_t bucket_count = 4096;  // must be a power of two
};

// Single-threaded discrete-event scheduler with a monotonically advancing
// virtual clock.
class Simulator {
 public:
  explicit Simulator(CalendarConfig calendar = {});
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  // Current virtual time. Only advances inside Run*().
  SimTime Now() const { return now_; }

  // Schedules `fn` (anything an EventFn can hold) to run at Now() + delay.
  // Returns a handle that can cancel the event while it is still pending.
  // Templated so the callable is constructed directly inside the pooled
  // event node — no EventFn temporary, no relocation on the way in.
  template <typename F>
  EventId Schedule(Duration delay, F&& fn) {
    return ScheduleInternal(now_ + delay, std::forward<F>(fn), /*daemon=*/false,
                            /*periodic=*/false, Duration::Zero());
  }

  // Schedules at an absolute time, which must not be in the past.
  template <typename F>
  EventId ScheduleAt(SimTime when, F&& fn) {
    return ScheduleInternal(when, std::forward<F>(fn), /*daemon=*/false,
                            /*periodic=*/false, Duration::Zero());
  }

  // Daemon events (heartbeats, watchdog sweeps) do not keep Run() alive:
  // Run() returns once only daemons remain. RunUntil/RunFor still execute
  // daemons up to the deadline, and Step() executes them like any event.
  template <typename F>
  EventId ScheduleDaemon(Duration delay, F&& fn) {
    return ScheduleInternal(now_ + delay, std::forward<F>(fn), /*daemon=*/true,
                            /*periodic=*/false, Duration::Zero());
  }

  // Schedules `fn` to run every `period`, first at Now() + period. The event
  // re-arms itself after each invocation (the re-arm takes a fresh sequence
  // number at fire time, exactly as a hand-rolled reschedule-last loop
  // would), but the returned EventId stays valid across firings, so one
  // Cancel — from anywhere, including inside `fn` — stops the loop for good.
  // Periodic events are daemons: they never keep Run() alive.
  template <typename F>
  EventId SchedulePeriodic(Duration period, F&& fn) {
    return ScheduleInternal(now_ + period, std::forward<F>(fn), /*daemon=*/true,
                            /*periodic=*/true, period);
  }

  // Cancels a pending event in O(1): the node is reclaimed immediately (its
  // callback and captures are destroyed now, not when the timestamp would
  // have been reached). Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs events until no non-daemon events remain.
  void Run();

  // Runs events with timestamp <= deadline; leaves Now() == deadline if the
  // queue drained earlier, so follow-up scheduling stays consistent.
  void RunUntil(SimTime deadline);

  // Convenience: RunUntil(Now() + delta).
  void RunFor(Duration delta);

  // Executes the single earliest pending event. Returns false if none.
  bool Step();

  // Number of events executed since construction.
  uint64_t events_executed() const { return events_executed_; }
  // Number of events currently pending (excluding cancelled ones).
  size_t pending_events() const { return pending_count_; }

  // Introspection for tests and the memory-compaction regression suite:
  // queue slots occupied by already-cancelled events, and how many times the
  // queues were compacted to drop them.
  size_t cancelled_refs() const { return cancelled_refs_; }
  uint64_t compactions() const { return compactions_; }

 private:
  // A queued reference to a pooled node. Ordering is (when, seq); the
  // generation detects refs whose node was cancelled (and maybe reused).
  struct Ref {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    uint32_t generation;
  };

  struct Node {
    bool in_queue = false;
    bool daemon = false;
    bool periodic = false;
    Duration period;
    EventFn fn;
  };

  // Constructs the callable straight into the pool node, then hands the
  // bookkeeping to the non-template CommitSchedule (one copy of that code,
  // not one per lambda type).
  template <typename F>
  EventId ScheduleInternal(SimTime when, F&& fn, bool daemon, bool periodic,
                           Duration period) {
    uint32_t slot = AllocSlot();
    NodeAt(slot).fn = std::forward<F>(fn);
    return CommitSchedule(slot, when, daemon, periodic, period);
  }
  EventId CommitSchedule(uint32_t slot, SimTime when, bool daemon, bool periodic,
                         Duration period);
  uint32_t AllocSlot();
  // Reclaims a slot: destroys the callback, bumps the generation (so stale
  // refs and EventIds miss), and returns the slot to the freelist.
  void ReleaseSlot(uint32_t slot);
  // Invalidates the slot's generation without touching its contents — used
  // to retire a firing event's id before its callback runs in place.
  void BumpGeneration(uint32_t slot) {
    if (++generations_[slot] == 0) {
      generations_[slot] = 1;  // generation 0 is the invalid-EventId marker
    }
  }
  // Nodes live in fixed chunks so their addresses survive pool growth: a
  // callback executing in place may schedule (allocating nodes) without
  // moving itself.
  Node& NodeAt(uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  bool RefLive(const Ref& ref) const {
    return generations_[ref.slot] == ref.generation;
  }

  // Heap helpers over a plain vector (min-heap on (when, seq)).
  static void HeapPush(std::vector<Ref>& heap, Ref ref);
  static Ref HeapPop(std::vector<Ref>& heap);

  void InsertRef(Ref ref);
  SimTime Horizon() const;

  // Makes cur_'s top the globally earliest live event: skims stale refs and
  // advances the calendar window as needed. False if nothing is pending.
  bool EnsureNext();
  // Rotates one bucket into cur_ and pulls newly-in-window spill entries.
  void AdvanceOneBucket();
  // Advances base_/cur_end_ past empty buckets to the next occupied one
  // (precondition: refs_in_buckets_ > 0) without touching the skipped slots.
  void SkipEmptyBuckets();
  // With cur_ and all buckets empty, realigns the window at the spill top.
  void JumpToSpill();
  void DrainSpillIntoWindow();

  // Pops and runs the earliest event. Precondition: EnsureNext() was true.
  void RunTop();

  // Drops cancelled refs from every queue once they outnumber live ones (the
  // schedule-then-cancel burst pattern would otherwise grow memory
  // unboundedly within a run).
  void MaybeCompact();
  void Compact();

  SimTime now_ = SimTime::Zero();
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;

  // Event pool: chunk-stable node storage plus a dense generation array.
  // Liveness checks (the inner loop of every pop) touch only the packed
  // uint32 array, not the ~300-byte nodes.
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::vector<uint32_t> generations_;
  std::vector<uint32_t> free_slots_;

  // Calendar: cur_ holds refs with when < cur_end_; bucket j (ring order
  // from base_) covers [cur_end_ + j*W, cur_end_ + (j+1)*W); spill_ holds
  // refs at or beyond the window horizon.
  const uint64_t bucket_width_nanos_;
  const uint32_t bucket_mask_;
  std::vector<Ref> cur_;
  std::vector<std::vector<Ref>> buckets_;
  std::vector<Ref> spill_;
  SimTime cur_end_;
  uint32_t base_ = 0;
  size_t refs_in_buckets_ = 0;
  // One bit per ring slot: set while that bucket holds any ref (live or
  // stale). Lets EnsureNext() jump over runs of empty buckets in O(1) word
  // scans instead of rotating them one at a time — with fine-grained buckets
  // and sparse events, empty rotations would otherwise dominate.
  std::vector<uint64_t> occupied_;

  size_t pending_count_ = 0;
  // Non-daemon events outstanding (what Run() waits on).
  uint64_t live_events_ = 0;
  size_t cancelled_refs_ = 0;
  uint64_t compactions_ = 0;
};

// RAII handle for a scheduled event: cancels it on destruction. Movable, so
// it can live in containers and records; assignment cancels the previously
// held event. Replaces the hand-rolled "store an EventId, remember to Cancel
// and null it on every exit path" pattern.
class ScopedEvent {
 public:
  ScopedEvent() = default;
  ScopedEvent(Simulator* simulator, EventId id) : simulator_(simulator), id_(id) {}

  ScopedEvent(ScopedEvent&& other) noexcept
      : simulator_(other.simulator_), id_(other.id_) {
    other.simulator_ = nullptr;
    other.id_ = EventId();
  }
  ScopedEvent& operator=(ScopedEvent&& other) noexcept {
    if (this != &other) {
      Cancel();
      simulator_ = other.simulator_;
      id_ = other.id_;
      other.simulator_ = nullptr;
      other.id_ = EventId();
    }
    return *this;
  }

  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

  ~ScopedEvent() { Cancel(); }

  // Cancels the held event (if any still pending). Returns what
  // Simulator::Cancel returned; the handle becomes empty either way.
  bool Cancel() {
    bool cancelled = false;
    if (simulator_ != nullptr && id_.valid()) {
      cancelled = simulator_->Cancel(id_);
    }
    simulator_ = nullptr;
    id_ = EventId();
    return cancelled;
  }

  // Abandons ownership without cancelling; returns the raw id.
  EventId Release() {
    EventId id = id_;
    simulator_ = nullptr;
    id_ = EventId();
    return id;
  }

  EventId id() const { return id_; }
  bool armed() const { return id_.valid(); }

 private:
  Simulator* simulator_ = nullptr;
  EventId id_;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_SIMULATOR_H_
