// The discrete-event simulation core.
//
// Every hardware component in the emulator (bus, fabric, devices, NAND dies,
// embedded cores) is driven by callbacks scheduled on one Simulator. Events at
// equal timestamps run in scheduling order, which keeps runs deterministic for
// a fixed seed — a property the tests rely on.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace lastcpu::sim {

// Handle for a scheduled event, usable to cancel it before it fires.
class EventId {
 public:
  constexpr EventId() = default;
  constexpr explicit EventId(uint64_t seq) : seq_(seq) {}

  constexpr uint64_t seq() const { return seq_; }
  constexpr bool valid() const { return seq_ != 0; }

  friend constexpr auto operator<=>(EventId, EventId) = default;

 private:
  uint64_t seq_ = 0;
};

// Single-threaded discrete-event scheduler with a monotonically advancing
// virtual clock.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current virtual time. Only advances inside Run*().
  SimTime Now() const { return now_; }

  // Schedules `callback` to run at Now() + delay. Returns a handle that can
  // cancel the event while it is still pending.
  EventId Schedule(Duration delay, Callback callback);

  // Schedules at an absolute time, which must not be in the past.
  EventId ScheduleAt(SimTime when, Callback callback);

  // Daemon events (heartbeats, watchdog sweeps) do not keep Run() alive:
  // Run() returns once only daemons remain. RunUntil/RunFor still execute
  // daemons up to the deadline, and Step() executes them like any event.
  EventId ScheduleDaemon(Duration delay, Callback callback);

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs events until no non-daemon events remain.
  void Run();

  // Runs events with timestamp <= deadline; leaves Now() == deadline if the
  // queue drained earlier, so follow-up scheduling stays consistent.
  void RunUntil(SimTime deadline);

  // Convenience: RunUntil(Now() + delta).
  void RunFor(Duration delta);

  // Executes the single earliest pending event. Returns false if none.
  bool Step();

  // Number of events executed since construction.
  uint64_t events_executed() const { return events_executed_; }
  // Number of events currently pending (excluding cancelled ones).
  size_t pending_events() const { return pending_.size(); }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback callback;
    bool daemon = false;

    // Min-heap on (when, seq): FIFO among simultaneous events.
    friend bool operator>(const Entry& a, const Entry& b) {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  EventId ScheduleInternal(SimTime when, Callback callback, bool daemon);

  // Pops and runs the top entry. Precondition: queue non-empty and top not
  // cancelled.
  void RunTop();
  // Drops cancelled entries from the top of the heap.
  void SkimCancelled();

  SimTime now_ = SimTime::Zero();
  uint64_t next_seq_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  // Seqs scheduled but not yet run or cancelled.
  std::unordered_set<uint64_t> pending_;
  // Non-daemon events outstanding (what Run() waits on).
  uint64_t live_events_ = 0;
  // Daemon seqs still pending (to maintain live_events_ on cancel).
  std::unordered_set<uint64_t> daemon_seqs_;
  // Seqs cancelled but still physically in the heap (lazy deletion).
  std::unordered_set<uint64_t> cancelled_;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_SIMULATOR_H_
