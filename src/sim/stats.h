// Measurement primitives: counters and latency histograms.
//
// Every experiment in EXPERIMENTS.md is produced from these. Histogram uses
// log-linear buckets (HdrHistogram-style) so p99 at nanosecond scale and
// multi-millisecond tails coexist with bounded error.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"

namespace lastcpu::sim {

// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

// Log-linear histogram over non-negative 64-bit values (we record
// nanoseconds). Each power-of-two range is split into kSubBuckets linear
// sub-buckets, bounding relative quantile error to ~1/kSubBuckets.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Record(Duration d) { Record(d.nanos()); }

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const;
  double sum() const { return sum_; }

  // Value at quantile q in [0, 1]; returns a bucket-representative value.
  uint64_t ValueAtQuantile(double q) const;
  uint64_t p50() const { return ValueAtQuantile(0.50); }
  uint64_t p90() const { return ValueAtQuantile(0.90); }
  uint64_t p99() const { return ValueAtQuantile(0.99); }
  uint64_t p999() const { return ValueAtQuantile(0.999); }

  void Reset();

  // Merges another histogram into this one.
  void Merge(const Histogram& other);

  // The recordings added since `earlier` (an older copy of this histogram):
  // buckets, count and sum subtract exactly; min/max are recomputed from the
  // surviving buckets, so they are bucket-representative approximations.
  Histogram DeltaSince(const Histogram& earlier) const;

  // "count=… mean=…us p50=… p99=… max=…" for logs and bench output.
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets -> ~3% error
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kRanges = 64 - kSubBucketBits + 1;

  static int BucketIndex(uint64_t value);
  static uint64_t BucketMidpoint(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

// A frozen copy of a registry's values at one simulated instant. Snapshots
// subtract (DeltaSince) so benchmarks report per-phase deltas instead of
// cumulative totals, and serialize to JSON for machine consumption.
struct StatsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Histogram> histograms;

  // This snapshot minus an older one taken from the same registry. Counters
  // and histograms absent from `earlier` pass through unchanged.
  StatsSnapshot DeltaSince(const StatsSnapshot& earlier) const;

  // {"counters":{...},"histograms":{name:{count,min,max,mean,p50,...}}}
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;
};

// A named bag of counters and histograms owned by one component; the machine
// aggregates registries for reporting.
class StatsRegistry {
 public:
  // Heterogeneous lookup: a string literal at the call site costs a tree
  // walk, never a temporary std::string. Returned references are stable for
  // the registry's lifetime — hot paths should look up once and keep the
  // reference instead of re-resolving the name per event.
  Counter& GetCounter(std::string_view name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(std::string(name), Counter{}).first;
    }
    return it->second;
  }
  Histogram& GetHistogram(std::string_view name) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(std::string(name), Histogram{}).first;
    }
    return it->second;
  }

  const std::map<std::string, Counter, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // Multi-line human-readable dump.
  std::string Report(const std::string& prefix = "") const;

  // Frozen copy of the current values.
  StatsSnapshot Snapshot() const;

  void Reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_STATS_H_
