// Causal tracing of simulated activity.
//
// Components obtain a component-scoped Tracer over the machine's TraceLog and
// emit structured records: spans (with ids and parent ids, reconstructing the
// causal tree of a control operation across devices), instants (point events
// such as "discover-hit"), and flow records (linking a bus message's send and
// receive sides by flow id). Tests assert on event sequences (e.g. the
// Figure-2 handshake order); exporters render the log as a Chrome trace_event
// file (see trace_export.h).
//
// Everything no-ops when the log is disabled: each Tracer call is a pointer
// check plus a bool load, so benchmarks pay ~nothing.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/time.h"
#include "src/sim/trace_context.h"

namespace lastcpu::sim {

enum class TraceKind : uint8_t {
  kInstant = 0,      // point event under an (optional) owning span
  kSpanBegin = 1,    // span `span` opens; `parent` is its causal parent
  kSpanEnd = 2,      // span `span` closes
  kFlowSend = 3,     // message with flow id `flow` handed to the bus
  kFlowReceive = 4,  // message with flow id `flow` arrived
};

struct TraceRecord {
  SimTime when;
  std::string component;
  std::string event;
  std::string detail;
  TraceKind kind = TraceKind::kInstant;
  SpanId span = 0;    // the span this record describes (or is anchored to)
  SpanId parent = 0;  // causal parent (kSpanBegin only)
  FlowId flow = 0;    // flow id (kFlowSend / kFlowReceive only)
};

// Append-only trace log. Disabled by default so benchmarks pay ~nothing.
// One log serves a whole machine (or several, for side-by-side comparisons);
// span and flow ids are minted here so they are unique machine-wide.
class TraceLog {
 public:
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Appends a fully-formed record. No-op when disabled. Most callers should
  // go through a Tracer instead.
  void Append(TraceRecord record);

  // Legacy untyped emission; records an instant with no span identity.
  [[deprecated("use sim::Tracer (BeginSpan/Instant) instead of raw Emit")]]
  void Emit(SimTime when, std::string component, std::string event, std::string detail);

  // Fresh machine-unique ids. Valid ids start at 1; 0 means "none".
  SpanId MintSpanId() { return ++last_span_id_; }
  FlowId MintFlowId() { return ++last_flow_id_; }

  const std::vector<TraceRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // Records whose event name matches exactly, in emission order. Span-end
  // records are skipped so a span contributes one match, not two.
  std::vector<TraceRecord> FindByEvent(const std::string& event) const;

  // True if events appear in the trace in the given relative order (other
  // events may be interleaved). Matches instants and span names (at their
  // begin records). Used by the Figure-2 sequence tests.
  bool ContainsSequence(const std::vector<std::string>& events) const;

  void Dump(std::ostream& os) const;

 private:
  bool enabled_ = false;
  uint64_t last_span_id_ = 0;
  uint64_t last_flow_id_ = 0;
  std::vector<TraceRecord> records_;
};

class Simulator;

// A component-scoped handle over the machine's TraceLog. Cheap to copy and to
// hold disabled: every method starts with an inline enabled-check and only
// then reads the simulated clock and builds a record.
class Tracer {
 public:
  Tracer() = default;
  Tracer(TraceLog* log, const Simulator* simulator, std::string component)
      : log_(log), simulator_(simulator), component_(std::move(component)) {}

  bool enabled() const { return log_ != nullptr && log_->enabled(); }
  TraceLog* log() const { return log_; }

  // Opens a span named `name`, causally under `parent` (0 = root). Returns
  // the new span id, or 0 when tracing is disabled.
  SpanId BeginSpan(std::string_view name, SpanId parent = 0, std::string_view detail = {}) {
    if (!enabled()) {
      return 0;
    }
    return BeginSpanImpl(name, parent, detail);
  }

  void EndSpan(SpanId span) {
    if (!enabled() || span == 0) {
      return;
    }
    EndSpanImpl(span);
  }

  // Point event, optionally anchored to an owning span.
  void Instant(std::string_view name, std::string_view detail = {}, SpanId span = 0) {
    if (!enabled()) {
      return;
    }
    InstantImpl(name, detail, span);
  }

  // Marks a message (named `message`, e.g. its payload type) leaving this
  // component under span `span`. Mints and returns the flow id (or reuses
  // `flow` if nonzero). Returns 0 when disabled.
  FlowId FlowSend(std::string_view message, SpanId span, FlowId flow = 0) {
    if (!enabled()) {
      return 0;
    }
    return FlowSendImpl(message, span, flow);
  }

  // Marks the matching arrival; `span` is the handling span it starts.
  void FlowReceive(std::string_view message, FlowId flow, SpanId span) {
    if (!enabled() || flow == 0) {
      return;
    }
    FlowReceiveImpl(message, flow, span);
  }

 private:
  SpanId BeginSpanImpl(std::string_view name, SpanId parent, std::string_view detail);
  void EndSpanImpl(SpanId span);
  void InstantImpl(std::string_view name, std::string_view detail, SpanId span);
  FlowId FlowSendImpl(std::string_view message, SpanId span, FlowId flow);
  void FlowReceiveImpl(std::string_view message, FlowId flow, SpanId span);

  TraceLog* log_ = nullptr;
  const Simulator* simulator_ = nullptr;
  std::string component_;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_TRACE_H_
