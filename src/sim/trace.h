// Structured trace of simulated activity.
//
// Components emit (time, component, event, detail) records; tests assert on
// sequences (e.g. the Figure-2 handshake order) and examples print them as a
// narrative of what the machine did.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace lastcpu::sim {

struct TraceRecord {
  SimTime when;
  std::string component;
  std::string event;
  std::string detail;
};

// Append-only trace log. Disabled by default so benchmarks pay ~nothing.
class TraceLog {
 public:
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void Emit(SimTime when, std::string component, std::string event, std::string detail);

  const std::vector<TraceRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // Records whose event name matches exactly, in emission order.
  std::vector<TraceRecord> FindByEvent(const std::string& event) const;

  // True if events appear in the trace in the given relative order (other
  // events may be interleaved). Used by the Figure-2 sequence tests.
  bool ContainsSequence(const std::vector<std::string>& events) const;

  void Dump(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_TRACE_H_
