#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/base/check.h"

namespace lastcpu::sim {

// Min-heap order on (when, seq): FIFO among simultaneous events. Shared by
// the heap helpers and Compact()'s rebuilds.
static bool RefAfter(const SimTime& a_when, uint64_t a_seq, const SimTime& b_when,
                     uint64_t b_seq) {
  if (a_when != b_when) {
    return a_when > b_when;
  }
  return a_seq > b_seq;
}

Simulator::Simulator(CalendarConfig calendar)
    : bucket_width_nanos_(calendar.bucket_width.nanos()),
      bucket_mask_(calendar.bucket_count - 1),
      cur_end_(SimTime::Zero() + calendar.bucket_width) {
  LASTCPU_CHECK(calendar.bucket_width > Duration::Zero(), "zero calendar bucket width");
  LASTCPU_CHECK(calendar.bucket_count > 0 &&
                    (calendar.bucket_count & (calendar.bucket_count - 1)) == 0,
                "calendar bucket count must be a power of two");
  buckets_.resize(calendar.bucket_count);
  occupied_.assign((calendar.bucket_count + 63) / 64, 0);
}

Simulator::~Simulator() = default;

void Simulator::HeapPush(std::vector<Ref>& heap, Ref ref) {
  heap.push_back(ref);
  std::push_heap(heap.begin(), heap.end(), [](const Ref& a, const Ref& b) {
    return RefAfter(a.when, a.seq, b.when, b.seq);
  });
}

Simulator::Ref Simulator::HeapPop(std::vector<Ref>& heap) {
  std::pop_heap(heap.begin(), heap.end(), [](const Ref& a, const Ref& b) {
    return RefAfter(a.when, a.seq, b.when, b.seq);
  });
  Ref ref = heap.back();
  heap.pop_back();
  return ref;
}

uint32_t Simulator::AllocSlot() {
  if (!free_slots_.empty()) {
    uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  uint32_t slot = static_cast<uint32_t>(generations_.size());
  if ((slot & (kChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
  }
  generations_.push_back(1);
  return slot;
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Node& node = NodeAt(slot);
  node.fn = nullptr;
  node.in_queue = false;
  node.periodic = false;
  BumpGeneration(slot);
  free_slots_.push_back(slot);
}

EventId Simulator::CommitSchedule(uint32_t slot, SimTime when, bool daemon, bool periodic,
                                  Duration period) {
  LASTCPU_CHECK(when >= now_, "scheduling into the past: %lu < %lu",
                static_cast<unsigned long>(when.nanos()),
                static_cast<unsigned long>(now_.nanos()));
  if (periodic) {
    LASTCPU_CHECK(period > Duration::Zero(), "periodic event with zero period");
  }
  Node& node = NodeAt(slot);
  LASTCPU_CHECK(node.fn, "null event callback");
  node.in_queue = true;
  node.daemon = daemon;
  node.periodic = periodic;
  node.period = period;
  uint64_t seq = next_seq_++;
  ++pending_count_;
  if (!daemon) {
    ++live_events_;
  }
  uint32_t generation = generations_[slot];
  InsertRef(Ref{when, seq, slot, generation});
  return EventId(slot, generation);
}

SimTime Simulator::Horizon() const {
  return cur_end_ + Duration::Nanos(bucket_width_nanos_ *
                                    static_cast<uint64_t>(buckets_.size()));
}

void Simulator::InsertRef(Ref ref) {
  if (ref.when < cur_end_) {
    HeapPush(cur_, ref);
    return;
  }
  uint64_t idx = (ref.when.nanos() - cur_end_.nanos()) / bucket_width_nanos_;
  if (idx < buckets_.size()) {
    uint32_t slot = (base_ + static_cast<uint32_t>(idx)) & bucket_mask_;
    buckets_[slot].push_back(ref);
    occupied_[slot >> 6] |= uint64_t{1} << (slot & 63);
    ++refs_in_buckets_;
    return;
  }
  HeapPush(spill_, ref);
}

bool Simulator::Cancel(EventId id) {
  if (!id.valid() || id.slot_ >= generations_.size()) {
    return false;
  }
  if (generations_[id.slot_] != id.generation_) {
    return false;  // already ran, already cancelled, or slot reused
  }
  Node& node = NodeAt(id.slot_);
  if (node.in_queue) {
    --pending_count_;
    if (!node.daemon) {
      --live_events_;
    }
    // The queued ref goes stale; it is skimmed at pop or swept by Compact().
    ++cancelled_refs_;
  }
  // O(1) reclamation: the callback (and everything it captured) dies now.
  ReleaseSlot(id.slot_);
  MaybeCompact();
  return true;
}

void Simulator::AdvanceOneBucket() {
  std::vector<Ref>& bucket = buckets_[base_];
  occupied_[base_ >> 6] &= ~(uint64_t{1} << (base_ & 63));
  base_ = (base_ + 1) & bucket_mask_;
  cur_end_ = cur_end_ + Duration::Nanos(bucket_width_nanos_);
  refs_in_buckets_ -= bucket.size();
  for (const Ref& ref : bucket) {
    if (RefLive(ref)) {
      HeapPush(cur_, ref);
    } else {
      --cancelled_refs_;
    }
  }
  bucket.clear();
  DrainSpillIntoWindow();
}

void Simulator::JumpToSpill() {
  // Precondition: cur_ and every bucket are empty, spill_ top is live. Slide
  // the whole window so the earliest far-future event lands in cur_; no
  // alignment is needed because buckets are indexed relative to cur_end_.
  cur_end_ = spill_.front().when + Duration::Nanos(bucket_width_nanos_);
  DrainSpillIntoWindow();
}

void Simulator::DrainSpillIntoWindow() {
  SimTime horizon = Horizon();
  while (!spill_.empty() && spill_.front().when < horizon) {
    Ref ref = HeapPop(spill_);
    if (RefLive(ref)) {
      InsertRef(ref);
    } else {
      --cancelled_refs_;
    }
  }
}

void Simulator::SkipEmptyBuckets() {
  // Find the smallest k with ring slot (base_ + k) occupied, scanning the
  // bitmap a word at a time starting from base_'s word (bits below base_
  // masked off; they belong to the window's far end and are caught on wrap).
  const uint32_t nwords = static_cast<uint32_t>(occupied_.size());
  uint32_t w = base_ >> 6;
  uint64_t word = occupied_[w] & (~uint64_t{0} << (base_ & 63));
  for (uint32_t scanned = 0;; ++scanned) {
    if (word != 0) {
      uint32_t found = (w << 6) + static_cast<uint32_t>(std::countr_zero(word));
      uint32_t k = (found - base_) & bucket_mask_;
      if (k != 0) {
        // Skipped buckets are empty: nothing to rotate, nothing to drain.
        // Spill refs all lie at or beyond the old horizon, so none of them
        // precedes the bucket this jump lands on.
        base_ = (base_ + k) & bucket_mask_;
        cur_end_ = cur_end_ + Duration::Nanos(bucket_width_nanos_ * k);
      }
      return;
    }
    LASTCPU_CHECK(scanned <= nwords, "occupancy bitmap empty with refs_in_buckets_ > 0");
    w = (w + 1) % nwords;
    word = occupied_[w];
  }
}

bool Simulator::EnsureNext() {
  while (true) {
    while (!cur_.empty() && !RefLive(cur_.front())) {
      HeapPop(cur_);
      --cancelled_refs_;
    }
    if (!cur_.empty()) {
      return true;
    }
    if (refs_in_buckets_ > 0) {
      SkipEmptyBuckets();
      AdvanceOneBucket();
      continue;
    }
    while (!spill_.empty() && !RefLive(spill_.front())) {
      HeapPop(spill_);
      --cancelled_refs_;
    }
    if (!spill_.empty()) {
      JumpToSpill();
      continue;
    }
    return false;
  }
}

void Simulator::RunTop() {
  Ref ref = HeapPop(cur_);
  Node& node = NodeAt(ref.slot);
  now_ = ref.when;
  ++events_executed_;
  node.in_queue = false;
  --pending_count_;
  if (!node.daemon) {
    --live_events_;
  }
  if (!node.periodic) {
    // Retire the id, then invoke the callback in place: Cancel() on the own
    // id during the callback is a clean miss (generation already moved on),
    // and chunk-stable node storage means the callback may freely schedule
    // (growing the pool) without moving out from under itself. The slot
    // returns to the freelist only after the invocation, so nothing reuses
    // the storage mid-call.
    BumpGeneration(ref.slot);
    node.fn();
    node.fn = nullptr;
    free_slots_.push_back(ref.slot);
    return;
  }
  // Periodic: invoke, then re-arm the same slot (same generation, so the
  // original EventId keeps working) unless the callback cancelled itself.
  EventFn fn = std::move(node.fn);
  fn();
  Node& again = NodeAt(ref.slot);
  if (generations_[ref.slot] != ref.generation) {
    return;  // cancelled during its own invocation; slot already reclaimed
  }
  again.fn = std::move(fn);
  again.in_queue = true;
  ++pending_count_;
  InsertRef(Ref{now_ + again.period, next_seq_++, ref.slot, ref.generation});
}

void Simulator::Run() {
  // Daemons alone do not sustain the run; they execute only while real work
  // remains ahead of them.
  while (live_events_ > 0 && EnsureNext()) {
    RunTop();
  }
}

void Simulator::RunUntil(SimTime deadline) {
  LASTCPU_CHECK(deadline >= now_, "RunUntil into the past");
  while (EnsureNext() && cur_.front().when <= deadline) {
    RunTop();
  }
  now_ = deadline;
}

void Simulator::RunFor(Duration delta) { RunUntil(now_ + delta); }

bool Simulator::Step() {
  if (!EnsureNext()) {
    return false;
  }
  RunTop();
  return true;
}

void Simulator::MaybeCompact() {
  // Compact once cancelled refs outnumber live ones (and are worth the
  // sweep): a schedule-then-cancel burst — per-attempt RPC deadlines that
  // almost always get cancelled — must not grow the queues unboundedly.
  constexpr size_t kCompactFloor = 64;
  if (cancelled_refs_ < kCompactFloor) {
    return;
  }
  size_t total = cur_.size() + refs_in_buckets_ + spill_.size();
  if (cancelled_refs_ * 2 > total) {
    Compact();
  }
}

void Simulator::Compact() {
  auto is_stale = [this](const Ref& ref) { return !RefLive(ref); };
  auto cmp = [](const Ref& a, const Ref& b) {
    return RefAfter(a.when, a.seq, b.when, b.seq);
  };
  cur_.erase(std::remove_if(cur_.begin(), cur_.end(), is_stale), cur_.end());
  std::make_heap(cur_.begin(), cur_.end(), cmp);
  spill_.erase(std::remove_if(spill_.begin(), spill_.end(), is_stale), spill_.end());
  std::make_heap(spill_.begin(), spill_.end(), cmp);
  for (uint32_t slot = 0; slot < buckets_.size(); ++slot) {
    std::vector<Ref>& bucket = buckets_[slot];
    size_t before = bucket.size();
    bucket.erase(std::remove_if(bucket.begin(), bucket.end(), is_stale), bucket.end());
    refs_in_buckets_ -= before - bucket.size();
    if (bucket.empty()) {
      occupied_[slot >> 6] &= ~(uint64_t{1} << (slot & 63));
    }
  }
  cancelled_refs_ = 0;
  ++compactions_;
}

}  // namespace lastcpu::sim
