#include "src/sim/simulator.h"

#include <utility>

#include "src/base/check.h"

namespace lastcpu::sim {

EventId Simulator::Schedule(Duration delay, Callback callback) {
  return ScheduleInternal(now_ + delay, std::move(callback), /*daemon=*/false);
}

EventId Simulator::ScheduleAt(SimTime when, Callback callback) {
  return ScheduleInternal(when, std::move(callback), /*daemon=*/false);
}

EventId Simulator::ScheduleDaemon(Duration delay, Callback callback) {
  return ScheduleInternal(now_ + delay, std::move(callback), /*daemon=*/true);
}

EventId Simulator::ScheduleInternal(SimTime when, Callback callback, bool daemon) {
  LASTCPU_CHECK(when >= now_, "scheduling into the past: %lu < %lu",
                static_cast<unsigned long>(when.nanos()),
                static_cast<unsigned long>(now_.nanos()));
  LASTCPU_CHECK(callback != nullptr, "null event callback");
  uint64_t seq = next_seq_++;
  queue_.push(Entry{when, seq, std::move(callback), daemon});
  pending_.insert(seq);
  if (daemon) {
    daemon_seqs_.insert(seq);
  } else {
    ++live_events_;
  }
  return EventId(seq);
}

bool Simulator::Cancel(EventId id) {
  if (pending_.erase(id.seq()) == 0) {
    return false;  // already ran, already cancelled, or never scheduled
  }
  if (daemon_seqs_.erase(id.seq()) == 0) {
    --live_events_;
  }
  // Lazy deletion: the heap entry is skipped when it surfaces at the top.
  cancelled_.insert(id.seq());
  return true;
}

void Simulator::SkimCancelled() {
  while (!queue_.empty()) {
    auto node = cancelled_.find(queue_.top().seq);
    if (node == cancelled_.end()) {
      return;
    }
    cancelled_.erase(node);
    queue_.pop();
  }
}

void Simulator::RunTop() {
  // The callback may schedule or cancel; copy out before popping.
  Entry top = queue_.top();
  queue_.pop();
  pending_.erase(top.seq);
  if (daemon_seqs_.erase(top.seq) == 0) {
    --live_events_;
  }
  now_ = top.when;
  ++events_executed_;
  top.callback();
}

void Simulator::Run() {
  // Daemons alone do not sustain the run; they execute only while real work
  // remains ahead of them.
  for (SkimCancelled(); !queue_.empty() && live_events_ > 0; SkimCancelled()) {
    RunTop();
  }
}

void Simulator::RunUntil(SimTime deadline) {
  LASTCPU_CHECK(deadline >= now_, "RunUntil into the past");
  for (SkimCancelled(); !queue_.empty() && queue_.top().when <= deadline; SkimCancelled()) {
    RunTop();
  }
  now_ = deadline;
}

void Simulator::RunFor(Duration delta) { RunUntil(now_ + delta); }

bool Simulator::Step() {
  SkimCancelled();
  if (queue_.empty()) {
    return false;
  }
  RunTop();
  return true;
}

}  // namespace lastcpu::sim
