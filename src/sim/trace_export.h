// Chrome trace_event exporter for TraceLog.
//
// Produces a JSON document loadable in chrome://tracing or Perfetto:
//   - one "process" per component (pid = stable component index),
//   - spans as complete ("X") duration events, overlapping spans of one
//     component spread across lanes (tids) greedily,
//   - instants as "i" events,
//   - bus message send/receive pairs as "s"/"f" flow arrows keyed by flow id.
// Timestamps are simulated nanoseconds rendered in microseconds (the
// trace_event unit), so a 1ns hop shows as ts delta 0.001.
#ifndef SRC_SIM_TRACE_EXPORT_H_
#define SRC_SIM_TRACE_EXPORT_H_

#include <ostream>

#include "src/sim/trace.h"

namespace lastcpu::sim {

void WriteChromeTrace(const TraceLog& log, std::ostream& os);

}  // namespace lastcpu::sim

#endif  // SRC_SIM_TRACE_EXPORT_H_
