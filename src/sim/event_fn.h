// EventFn: the simulator's move-only callback type — see MoveFn for the
// machinery and the rationale. The inline buffer is sized so a DMA completion
// (this + span + two vectors + a nested 168-byte MoveFn completion, ~240
// bytes) stays inline; event nodes are pooled, so the wider buffer costs
// arena bytes, not per-event allocations.
#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include "src/sim/move_fn.h"

namespace lastcpu::sim {

using EventFn = MoveFn<void(), 256>;

}  // namespace lastcpu::sim

#endif  // SRC_SIM_EVENT_FN_H_
