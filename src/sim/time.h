// Simulated time. The whole emulator advances a single virtual clock with
// nanosecond resolution; wall-clock time never appears in simulated results.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <compare>
#include <cstdint>
#include <string>

namespace lastcpu::sim {

// A span of simulated time, in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(uint64_t n) { return Duration(n); }
  static constexpr Duration Micros(uint64_t n) { return Duration(n * 1000); }
  static constexpr Duration Millis(uint64_t n) { return Duration(n * 1000 * 1000); }
  static constexpr Duration Seconds(uint64_t n) { return Duration(n * 1000 * 1000 * 1000); }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr uint64_t nanos() const { return nanos_; }
  constexpr double micros() const { return static_cast<double>(nanos_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(nanos_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr Duration operator+(Duration other) const { return Duration(nanos_ + other.nanos_); }
  constexpr Duration operator-(Duration other) const { return Duration(nanos_ - other.nanos_); }
  constexpr Duration operator*(uint64_t k) const { return Duration(nanos_ * k); }
  constexpr Duration operator/(uint64_t k) const { return Duration(nanos_ / k); }
  Duration& operator+=(Duration other) {
    nanos_ += other.nanos_;
    return *this;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  std::string ToString() const;

 private:
  constexpr explicit Duration(uint64_t nanos) : nanos_(nanos) {}

  uint64_t nanos_ = 0;
};

// An instant on the simulated clock (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromNanos(uint64_t n) { return SimTime(n); }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(~uint64_t{0}); }

  constexpr uint64_t nanos() const { return nanos_; }
  constexpr double micros() const { return static_cast<double>(nanos_) / 1e3; }
  constexpr double seconds() const { return static_cast<double>(nanos_) / 1e9; }

  constexpr SimTime operator+(Duration d) const { return SimTime(nanos_ + d.nanos()); }
  constexpr Duration operator-(SimTime other) const {
    return Duration::Nanos(nanos_ - other.nanos_);
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  std::string ToString() const;

 private:
  constexpr explicit SimTime(uint64_t nanos) : nanos_(nanos) {}

  uint64_t nanos_ = 0;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_TIME_H_
