#include "src/sim/trace.h"

#include <cstdio>
#include <utility>

namespace lastcpu::sim {

void TraceLog::Emit(SimTime when, std::string component, std::string event, std::string detail) {
  if (!enabled_) {
    return;
  }
  records_.push_back(TraceRecord{when, std::move(component), std::move(event), std::move(detail)});
}

std::vector<TraceRecord> TraceLog::FindByEvent(const std::string& event) const {
  std::vector<TraceRecord> out;
  for (const auto& record : records_) {
    if (record.event == event) {
      out.push_back(record);
    }
  }
  return out;
}

bool TraceLog::ContainsSequence(const std::vector<std::string>& events) const {
  size_t next = 0;
  for (const auto& record : records_) {
    if (next < events.size() && record.event == events[next]) {
      ++next;
    }
  }
  return next == events.size();
}

void TraceLog::Dump(std::ostream& os) const {
  for (const auto& record : records_) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%12.3fus", record.when.micros());
    os << ts << "  " << record.component << "  " << record.event;
    if (!record.detail.empty()) {
      os << "  (" << record.detail << ")";
    }
    os << "\n";
  }
}

}  // namespace lastcpu::sim
