#include "src/sim/trace.h"

#include <cstdio>
#include <utility>

#include "src/sim/simulator.h"

namespace lastcpu::sim {

void TraceLog::Append(TraceRecord record) {
  if (!enabled_) {
    return;
  }
  records_.push_back(std::move(record));
}

// The deprecated shim's own definition must not trip -Wdeprecated-declarations.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
void TraceLog::Emit(SimTime when, std::string component, std::string event, std::string detail) {
  Append(TraceRecord{when, std::move(component), std::move(event), std::move(detail),
                     TraceKind::kInstant, 0, 0, 0});
}
#pragma GCC diagnostic pop

std::vector<TraceRecord> TraceLog::FindByEvent(const std::string& event) const {
  std::vector<TraceRecord> out;
  for (const auto& record : records_) {
    if (record.kind == TraceKind::kSpanEnd) {
      continue;  // a span's name matches once, at its begin record
    }
    if (record.event == event) {
      out.push_back(record);
    }
  }
  return out;
}

bool TraceLog::ContainsSequence(const std::vector<std::string>& events) const {
  size_t next = 0;
  for (const auto& record : records_) {
    if (record.kind == TraceKind::kSpanEnd) {
      continue;
    }
    if (next < events.size() && record.event == events[next]) {
      ++next;
    }
  }
  return next == events.size();
}

void TraceLog::Dump(std::ostream& os) const {
  for (const auto& record : records_) {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%12.3fus", record.when.micros());
    os << ts << "  " << record.component << "  ";
    switch (record.kind) {
      case TraceKind::kSpanBegin:
        os << "[" << record.span << "<-" << record.parent << "] " << record.event;
        break;
      case TraceKind::kSpanEnd:
        os << "[" << record.span << "] end " << record.event;
        break;
      case TraceKind::kFlowSend:
        os << "~>" << record.flow << " " << record.event;
        break;
      case TraceKind::kFlowReceive:
        os << "<~" << record.flow << " " << record.event;
        break;
      case TraceKind::kInstant:
        os << record.event;
        break;
    }
    if (!record.detail.empty()) {
      os << "  (" << record.detail << ")";
    }
    os << "\n";
  }
}

SpanId Tracer::BeginSpanImpl(std::string_view name, SpanId parent, std::string_view detail) {
  SpanId span = log_->MintSpanId();
  log_->Append(TraceRecord{simulator_->Now(), component_, std::string(name), std::string(detail),
                           TraceKind::kSpanBegin, span, parent, 0});
  return span;
}

void Tracer::EndSpanImpl(SpanId span) {
  log_->Append(
      TraceRecord{simulator_->Now(), component_, "", "", TraceKind::kSpanEnd, span, 0, 0});
}

void Tracer::InstantImpl(std::string_view name, std::string_view detail, SpanId span) {
  log_->Append(TraceRecord{simulator_->Now(), component_, std::string(name), std::string(detail),
                           TraceKind::kInstant, span, 0, 0});
}

FlowId Tracer::FlowSendImpl(std::string_view message, SpanId span, FlowId flow) {
  if (flow == 0) {
    flow = log_->MintFlowId();
  }
  log_->Append(TraceRecord{simulator_->Now(), component_, std::string(message), "",
                           TraceKind::kFlowSend, span, 0, flow});
  return flow;
}

void Tracer::FlowReceiveImpl(std::string_view message, FlowId flow, SpanId span) {
  log_->Append(TraceRecord{simulator_->Now(), component_, std::string(message), "",
                           TraceKind::kFlowReceive, span, 0, flow});
}

}  // namespace lastcpu::sim
