// Causal trace context carried by messages and fabric operations.
//
// A TraceContext ties an in-flight operation back to the span that started
// it. It is deliberately a tiny POD with no dependencies so that proto and
// fabric types can embed one without pulling in the trace log machinery, and
// so copying a Message stays cheap. The context is simulator metadata only:
// it is never encoded on the simulated wire, so carrying it does not perturb
// modeled transfer times.
#ifndef SRC_SIM_TRACE_CONTEXT_H_
#define SRC_SIM_TRACE_CONTEXT_H_

#include <cstdint>

namespace lastcpu::sim {

// Identifies a span in the trace. 0 means "no span".
using SpanId = uint64_t;

// Identifies a message flow (one bus send/receive pair). 0 means "no flow".
using FlowId = uint64_t;

struct TraceContext {
  // The span under which the carrying operation was issued (the sender's
  // active span). Receivers parent their handling span to this.
  SpanId span = 0;
  // Flow id minted when the carrying message entered the bus; links the
  // send-side and receive-side trace records into one arrow.
  FlowId flow = 0;

  bool valid() const { return span != 0; }
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_TRACE_CONTEXT_H_
