#include "src/sim/fault.h"

#include <algorithm>

namespace lastcpu::sim {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

namespace {

// Does `spec` sever the (a, b) segment pair? a != b is the caller's problem.
bool Covers(const PartitionSpec& spec, uint32_t a, uint32_t b) {
  if (spec.segment_b == kAllSegments) {
    return a == spec.segment_a || b == spec.segment_a;
  }
  return (a == spec.segment_a && b == spec.segment_b) ||
         (a == spec.segment_b && b == spec.segment_a);
}

bool ActiveAt(const PartitionSpec& spec, SimTime now) {
  SimTime start = SimTime::Zero() + spec.start;
  if (now < start) {
    return false;
  }
  return spec.heal == Duration::Zero() || now < SimTime::Zero() + spec.heal;
}

}  // namespace

bool FaultInjector::PartitionActive(uint32_t a, uint32_t b, SimTime now) const {
  for (const PartitionSpec& spec : plan_.partitions) {
    if (Covers(spec, a, b) && ActiveAt(spec, now)) {
      return true;
    }
  }
  return false;
}

SimTime FaultInjector::PartitionHealTime(uint32_t a, uint32_t b, SimTime now) const {
  // The link is usable only once every covering active spec has healed.
  SimTime heal = SimTime::Zero();
  for (const PartitionSpec& spec : plan_.partitions) {
    if (!Covers(spec, a, b) || !ActiveAt(spec, now)) {
      continue;
    }
    if (spec.heal == Duration::Zero()) {
      return SimTime::Max();
    }
    heal = std::max(heal, SimTime::Zero() + spec.heal);
  }
  return heal;
}

FaultDecision FaultInjector::Decide() {
  ++decisions_;
  FaultDecision decision;
  if (rng_.NextBool(plan_.drop_probability)) {
    decision.drop = true;
    ++dropped_;
    return decision;  // a dropped message cannot also be delayed or copied
  }
  if (rng_.NextBool(plan_.delay_probability)) {
    uint64_t lo = plan_.delay_min.nanos();
    uint64_t hi = plan_.delay_max.nanos() >= lo ? plan_.delay_max.nanos() : lo;
    decision.extra_delay = Duration::Nanos(rng_.NextInRange(lo, hi));
    ++delayed_;
  }
  if (rng_.NextBool(plan_.duplicate_probability)) {
    decision.duplicate = true;
    ++duplicated_;
  }
  if (rng_.NextBool(plan_.reorder_probability)) {
    decision.reorder = true;
    ++reordered_;
  }
  return decision;
}

}  // namespace lastcpu::sim
