#include "src/sim/fault.h"

namespace lastcpu::sim {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

FaultDecision FaultInjector::Decide() {
  ++decisions_;
  FaultDecision decision;
  if (rng_.NextBool(plan_.drop_probability)) {
    decision.drop = true;
    ++dropped_;
    return decision;  // a dropped message cannot also be delayed or copied
  }
  if (rng_.NextBool(plan_.delay_probability)) {
    uint64_t lo = plan_.delay_min.nanos();
    uint64_t hi = plan_.delay_max.nanos() >= lo ? plan_.delay_max.nanos() : lo;
    decision.extra_delay = Duration::Nanos(rng_.NextInRange(lo, hi));
    ++delayed_;
  }
  if (rng_.NextBool(plan_.duplicate_probability)) {
    decision.duplicate = true;
    ++duplicated_;
  }
  if (rng_.NextBool(plan_.reorder_probability)) {
    decision.reorder = true;
    ++reordered_;
  }
  return decision;
}

}  // namespace lastcpu::sim
