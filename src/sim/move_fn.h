// MoveFn: the move-only callback template behind the simulator's event and
// completion types.
//
// The emulator's hot paths hand callbacks across layers millions of times per
// simulated second — event bodies, DMA completions, file-IO continuations,
// KVS op callbacks. std::function was wrong for all of them twice over: it
// requires copy-constructible callables (forcing byte-vector and
// proto::Message captures to be copyable, which invites silent copies and
// shared_ptr wrappers), and its 16-byte inline buffer is too small for a
// typical "this + a few words + a nested completion" capture, so nearly every
// callback paid a heap allocation.
//
// MoveFn<Sig, InlineBytes> is move-only and stores any callable whose size is
// at most InlineBytes directly inline (static_assert-guarded — the inline
// promise is checked at compile time, not hoped for). Larger callables fall
// back to a single heap allocation, same as std::function, but may capture
// move-only state (unique_ptr, a moved buffer) which std::function cannot
// hold at all. Pick InlineBytes per signature: big enough for the layer's
// worst-case capture, small enough that a MoveFn nested inside another
// capture doesn't push the outer one past its own inline budget.
#ifndef SRC_SIM_MOVE_FN_H_
#define SRC_SIM_MOVE_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lastcpu::sim {

template <typename Sig, size_t InlineBytes = 48>
class MoveFn;  // undefined; only the function-signature specialization exists

template <typename R, typename... Args, size_t InlineBytes>
class MoveFn<R(Args...), InlineBytes> {
 public:
  // Captures up to this many bytes are stored inline, with no allocation.
  static constexpr size_t kInlineBytes = InlineBytes;

  MoveFn() = default;
  MoveFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, MoveFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  MoveFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(fn));
  }

  // Converting assignment constructs the callable directly in this object's
  // storage — an `event.fn = lambda` never materializes a MoveFn temporary
  // just to relocate it. The scheduling hot path leans on this.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, MoveFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  MoveFn& operator=(F&& fn) {
    Reset();
    Emplace(std::forward<F>(fn));
    return *this;
  }

  MoveFn(MoveFn&& other) noexcept { MoveFrom(other); }
  MoveFn& operator=(MoveFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  MoveFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  MoveFn(const MoveFn&) = delete;
  MoveFn& operator=(const MoveFn&) = delete;

  ~MoveFn() { Reset(); }

  // Const like std::function's call operator (the callable itself is deemed
  // logically state-free), so callbacks can be invoked from non-mutable
  // lambda captures.
  R operator()(Args... args) const {
    return vtable_->invoke(const_cast<unsigned char*>(storage_), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return vtable_ != nullptr; }
  friend bool operator==(const MoveFn& fn, std::nullptr_t) { return fn.vtable_ == nullptr; }
  friend bool operator!=(const MoveFn& fn, std::nullptr_t) { return fn.vtable_ != nullptr; }

 private:
  static constexpr size_t kStorageAlign = alignof(std::max_align_t);

  struct VTable {
    R (*invoke)(unsigned char* storage, Args&&... args);
    // Move-constructs dst's storage from src's and destroys src's object.
    void (*relocate)(unsigned char* dst, unsigned char* src);
    void (*destroy)(unsigned char* storage);
  };

  template <typename F, typename D = std::decay_t<F>>
  void Emplace(F&& fn) {
    if constexpr (StoredInline<D>()) {
      static_assert(sizeof(D) <= kInlineBytes,
                    "callable advertised as inline does not fit the buffer");
      static_assert(alignof(D) <= kStorageAlign,
                    "callable advertised as inline is over-aligned");
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      vtable_ = &kInlineVTable<D>;
    } else {
      *AsPtrSlot() = new D(std::forward<F>(fn));
      vtable_ = &kHeapVTable<D>;
    }
  }

  template <typename D>
  static constexpr bool StoredInline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= kStorageAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* AsInline(unsigned char* storage) {
    return std::launder(reinterpret_cast<D*>(storage));
  }

  void** AsPtrSlot() { return reinterpret_cast<void**>(storage_); }

  template <typename D>
  static constexpr VTable kInlineVTable = {
      [](unsigned char* storage, Args&&... args) -> R {
        return (*AsInline<D>(storage))(std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) {
        if constexpr (std::is_trivially_copyable_v<D>) {
          // Trivially copyable captures relocate as a raw byte copy of the
          // object itself — no move-construct/destroy round trip.
          __builtin_memcpy(dst, src, sizeof(D));
        } else {
          D* from = AsInline<D>(src);
          ::new (static_cast<void*>(dst)) D(std::move(*from));
          from->~D();
        }
      },
      [](unsigned char* storage) { AsInline<D>(storage)->~D(); },
  };

  template <typename D>
  static constexpr VTable kHeapVTable = {
      [](unsigned char* storage, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(storage)))(std::forward<Args>(args)...);
      },
      [](unsigned char* dst, unsigned char* src) {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](unsigned char* storage) { delete *std::launder(reinterpret_cast<D**>(storage)); },
  };

  void Reset() {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  void MoveFrom(MoveFn& other) {
    if (other.vtable_ != nullptr) {
      other.vtable_->relocate(storage_, other.storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  const VTable* vtable_ = nullptr;
  alignas(kStorageAlign) unsigned char storage_[kInlineBytes];
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_MOVE_FN_H_
