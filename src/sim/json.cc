#include "src/sim/json.h"

#include <cctype>
#include <cstdlib>

namespace lastcpu::sim {
namespace {

// Local analogue of LASTCPU_RETURN_IF_ERROR for the parser's Status plumbing.
#define LASTCPU_JSON_RETURN(expr)          \
  do {                                     \
    Status json_status_ = (expr);          \
    if (!json_status_.ok()) {              \
      return json_status_;                 \
    }                                      \
  } while (false)

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    LASTCPU_JSON_RETURN(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing garbage after document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) {
    return InvalidArgument("json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out) {
    if (++depth_ > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = ParseObject(out);
        break;
      case '[':
        status = ParseArray(out);
        break;
      case '"': {
        std::string s;
        status = ParseString(&s);
        if (status.ok()) {
          *out = JsonValue(std::move(s));
        }
        break;
      }
      case 't':
        status = ParseLiteral("true", JsonValue(true), out);
        break;
      case 'f':
        status = ParseLiteral("false", JsonValue(false), out);
        break;
      case 'n':
        status = ParseLiteral("null", JsonValue(nullptr), out);
        break;
      default:
        status = ParseNumber(out);
        break;
    }
    --depth_;
    return status;
  }

  Status ParseLiteral(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return OkStatus();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected value");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number");
    }
    *out = JsonValue(value);
    return OkStatus();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected string");
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          LASTCPU_JSON_RETURN(ParseUnicodeEscape(out));
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseUnicodeEscape(std::string* out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad \\u escape");
      }
    }
    // Encode as UTF-8 (surrogate pairs are passed through individually; the
    // exporters never emit them).
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return OkStatus();
  }

  Status ParseArray(JsonValue* out) {
    Consume('[');
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue(std::move(items));
      return OkStatus();
    }
    while (true) {
      JsonValue item;
      LASTCPU_JSON_RETURN(ParseValue(&item));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) {
        break;
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']'");
      }
    }
    *out = JsonValue(std::move(items));
    return OkStatus();
  }

  Status ParseObject(JsonValue* out) {
    Consume('{');
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue(std::move(members));
      return OkStatus();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      LASTCPU_JSON_RETURN(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue value;
      LASTCPU_JSON_RETURN(ParseValue(&value));
      members[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) {
        break;
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}'");
      }
    }
    *out = JsonValue(std::move(members));
    return OkStatus();
  }

#undef LASTCPU_JSON_RETURN

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  auto it = object().find(key);
  if (it == object().end()) {
    return nullptr;
  }
  return &it->second;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace lastcpu::sim
