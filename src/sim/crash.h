// Seed-deterministic crash schedules for whole devices.
//
// FaultPlan (fault.h) perturbs *messages*; a CrashPlan kills *devices*. Each
// CrashSpec names a victim and a trigger — an absolute time, the Kth message
// the device sends, or its next self-test — plus what the silicon does when
// the supervisor pulses its reset line afterwards: come back clean, crash
// again during self-test a fixed number of times (a crash loop), or never
// return. Schedules are plain data, so the same plan replayed against the
// same machine yields byte-identical event sequences; the chaos soak test
// leans on that to diff reruns.
#ifndef SRC_SIM_CRASH_H_
#define SRC_SIM_CRASH_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace lastcpu::sim {

struct CrashSpec {
  // Victim device id (raw; DeviceId is a layer above sim).
  uint32_t device = 0;

  // Trigger — exactly one should be set:
  // kill at absolute sim time `at` (when nonzero), ...
  Duration at = Duration::Zero();
  // ... or on the Kth control message the device sends (1-based), ...
  uint64_t on_kth_send = 0;
  // ... or 1 ns after the device issues its Kth NAND program (1-based,
  // cumulative across respawns; smart SSDs only) — the program is still
  // in flight, so the cut lands mid-page and tears it, ...
  uint64_t on_kth_program = 0;
  // ... or midway through the device's next self-test (boot or post-reset),
  // which exercises the supervisor's restart-deadline path: silicon dead in
  // self-test sends neither heartbeats nor an alive announce.
  bool during_self_test = false;

  // When set, the kill is a power cut rather than a logic fault: volatile
  // device state (FTL maps, session queues) drops and in-flight media
  // programs tear; the post-reset self-test replays the on-media journal.
  bool power_cut = false;

  // What the reset line gets out of the silicon afterwards.
  enum class Respawn : uint8_t {
    kClean,      // next self-test completes; the device comes back
    kCrashLoop,  // the next `loop_count` self-tests crash, then clean
    kNever,      // every self-test crashes; only quarantine ends it
  };
  Respawn respawn = Respawn::kClean;
  uint32_t loop_count = 0;  // kCrashLoop only
};

struct CrashPlan {
  std::vector<CrashSpec> crashes;
  // Reserved for schedule generators (jittered kill times); the injector
  // itself is fully deterministic and never draws randomness.
  uint64_t seed = 0xC7A5C0DE;

  bool enabled() const { return !crashes.empty(); }
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_CRASH_H_
