#include "src/sim/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace lastcpu::sim {
namespace {

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMicros(SimTime when) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", when.micros());
  return buf;
}

struct Span {
  std::string component;
  std::string name;
  std::string detail;
  SimTime begin;
  SimTime end;
  bool closed = false;
  SpanId parent = 0;
  int tid = 0;
};

struct Emitted {
  uint64_t ts_ns;
  // Orders events at equal timestamps: metadata < span begins < the rest, so
  // flow binding to an enclosing slice start works in Chrome's model.
  int rank;
  std::string json;
};

}  // namespace

void WriteChromeTrace(const TraceLog& log, std::ostream& os) {
  const auto& records = log.records();

  // Stable pid per component, in order of first appearance.
  std::map<std::string, int> pids;
  std::vector<std::string> components;
  for (const auto& r : records) {
    if (pids.emplace(r.component, static_cast<int>(components.size()) + 1).second) {
      components.push_back(r.component);
    }
  }

  // Reconstruct spans from begin/end pairs.
  std::map<SpanId, Span> spans;
  SimTime last_ts;
  for (const auto& r : records) {
    last_ts = std::max(last_ts, r.when);
    if (r.kind == TraceKind::kSpanBegin) {
      Span span;
      span.component = r.component;
      span.name = r.event;
      span.detail = r.detail;
      span.begin = r.when;
      span.end = r.when;
      span.parent = r.parent;
      spans[r.span] = span;
    } else if (r.kind == TraceKind::kSpanEnd) {
      auto it = spans.find(r.span);
      if (it != spans.end()) {
        it->second.end = r.when;
        it->second.closed = true;
      }
    }
  }
  // A span that never closed (e.g. a request still in flight when the trace
  // was dumped) extends to the last record so it stays visible.
  for (auto& [id, span] : spans) {
    if (!span.closed) {
      span.end = last_ts;
    }
  }

  // Greedy lane (tid) assignment: overlapping spans of one component go to
  // separate lanes so Chrome renders them side by side, not nested wrongly.
  std::map<std::string, std::vector<SimTime>> lane_ends;
  std::vector<std::pair<SpanId, Span*>> ordered;
  ordered.reserve(spans.size());
  for (auto& [id, span] : spans) {
    ordered.emplace_back(id, &span);
  }
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.second->begin != b.second->begin) {
      return a.second->begin < b.second->begin;
    }
    return a.first < b.first;
  });
  for (auto& [id, span] : ordered) {
    auto& lanes = lane_ends[span->component];
    int lane = -1;
    for (size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i] <= span->begin) {
        lane = static_cast<int>(i);
        break;
      }
    }
    if (lane < 0) {
      lane = static_cast<int>(lanes.size());
      lanes.push_back(span->begin);
    }
    lanes[static_cast<size_t>(lane)] = span->end;
    span->tid = lane;
  }

  auto pid_of = [&](const std::string& component) { return pids[component]; };
  // An event may only anchor to a span lane within its own process row.
  auto tid_of_span = [&](SpanId id, const std::string& component) {
    auto it = spans.find(id);
    return (it == spans.end() || it->second.component != component) ? 0 : it->second.tid;
  };

  std::vector<Emitted> events;
  events.reserve(records.size() + components.size());

  for (const auto& component : components) {
    events.push_back(
        {0, -1,
         "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(pid_of(component)) +
             ",\"tid\":0,\"args\":{\"name\":\"" + EscapeJson(component) + "\"}}"});
  }

  for (const auto& [id, span] : spans) {
    double dur = (span.end - span.begin).micros();
    char durbuf[32];
    std::snprintf(durbuf, sizeof(durbuf), "%.3f", dur);
    std::string json = "{\"ph\":\"X\",\"name\":\"" + EscapeJson(span.name) +
                       "\",\"cat\":\"span\",\"ts\":" + FormatMicros(span.begin) +
                       ",\"dur\":" + durbuf + ",\"pid\":" + std::to_string(pid_of(span.component)) +
                       ",\"tid\":" + std::to_string(span.tid) +
                       ",\"args\":{\"span\":" + std::to_string(id) +
                       ",\"parent\":" + std::to_string(span.parent);
    if (!span.detail.empty()) {
      json += ",\"detail\":\"" + EscapeJson(span.detail) + "\"";
    }
    json += "}}";
    events.push_back({span.begin.nanos(), 0, std::move(json)});
  }

  for (const auto& r : records) {
    switch (r.kind) {
      case TraceKind::kInstant: {
        std::string json = "{\"ph\":\"i\",\"name\":\"" + EscapeJson(r.event) +
                           "\",\"cat\":\"event\",\"s\":\"t\",\"ts\":" + FormatMicros(r.when) +
                           ",\"pid\":" + std::to_string(pid_of(r.component)) +
                           ",\"tid\":" + std::to_string(tid_of_span(r.span, r.component));
        if (!r.detail.empty()) {
          json += ",\"args\":{\"detail\":\"" + EscapeJson(r.detail) + "\"}";
        }
        json += "}";
        events.push_back({r.when.nanos(), 1, std::move(json)});
      } break;
      case TraceKind::kFlowSend:
      case TraceKind::kFlowReceive: {
        bool send = r.kind == TraceKind::kFlowSend;
        std::string json = std::string("{\"ph\":\"") + (send ? "s" : "f") +
                           "\",\"name\":\"msg\",\"cat\":\"flow\",\"id\":" +
                           std::to_string(r.flow) + ",\"ts\":" + FormatMicros(r.when) +
                           ",\"pid\":" + std::to_string(pid_of(r.component)) +
                           ",\"tid\":" + std::to_string(tid_of_span(r.span, r.component));
        if (!send) {
          json += ",\"bp\":\"e\"";
        }
        if (!r.event.empty()) {
          json += ",\"args\":{\"message\":\"" + EscapeJson(r.event) + "\"}";
        }
        json += "}";
        events.push_back({r.when.nanos(), send ? 1 : 2, std::move(json)});
      } break;
      case TraceKind::kSpanBegin:
      case TraceKind::kSpanEnd:
        break;  // already rendered as complete events
    }
  }

  std::stable_sort(events.begin(), events.end(), [](const Emitted& a, const Emitted& b) {
    if (a.ts_ns != b.ts_ns) {
      return a.ts_ns < b.ts_ns;
    }
    return a.rank < b.rank;
  });

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "\n" << events[i].json;
  }
  os << "\n]}\n";
}

}  // namespace lastcpu::sim
