// Minimal JSON document model + recursive-descent parser.
//
// Exists so the trace/metrics exporters can be round-trip tested (and the
// quickstart smoke check can validate its own output) without an external
// JSON dependency. Supports the full JSON grammar: null, bools, numbers,
// strings (with escapes), arrays, objects.
#ifndef SRC_SIM_JSON_H_
#define SRC_SIM_JSON_H_

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/base/status.h"

namespace lastcpu::sim {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : state_(nullptr) {}
  JsonValue(std::nullptr_t) : state_(nullptr) {}      // NOLINT(google-explicit-constructor)
  JsonValue(bool b) : state_(b) {}                    // NOLINT(google-explicit-constructor)
  JsonValue(double d) : state_(d) {}                  // NOLINT(google-explicit-constructor)
  JsonValue(std::string s) : state_(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  JsonValue(Array a) : state_(std::move(a)) {}        // NOLINT(google-explicit-constructor)
  JsonValue(Object o) : state_(std::move(o)) {}       // NOLINT(google-explicit-constructor)

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(state_); }
  bool is_bool() const { return std::holds_alternative<bool>(state_); }
  bool is_number() const { return std::holds_alternative<double>(state_); }
  bool is_string() const { return std::holds_alternative<std::string>(state_); }
  bool is_array() const { return std::holds_alternative<Array>(state_); }
  bool is_object() const { return std::holds_alternative<Object>(state_); }

  bool boolean() const { return std::get<bool>(state_); }
  double number() const { return std::get<double>(state_); }
  const std::string& str() const { return std::get<std::string>(state_); }
  const Array& array() const { return std::get<Array>(state_); }
  const Object& object() const { return std::get<Object>(state_); }

  // Object member lookup; nullptr if this is not an object or the key is
  // absent. Chains conveniently: v.Find("a") ? v.Find("a")->number() : 0.
  const JsonValue* Find(const std::string& key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> state_;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage is an error). Returns InvalidArgument with a byte offset on
// malformed input.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace lastcpu::sim

#endif  // SRC_SIM_JSON_H_
