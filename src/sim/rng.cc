#include "src/sim/rng.h"

#include <cmath>

#include "src/base/check.h"

namespace lastcpu::sim {
namespace {

constexpr uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = RotL(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  LASTCPU_CHECK(bound > 0, "NextBelow(0)");
  // Lemire's multiply-shift rejection method: unbiased and fast.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<uint64_t>(m) >= threshold) {
      return static_cast<uint64_t>(m >> 64);
    }
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  LASTCPU_CHECK(lo <= hi, "NextInRange: lo > hi");
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

void Rng::Fill(std::vector<uint8_t>& out) {
  size_t i = 0;
  while (i + 8 <= out.size()) {
    uint64_t word = NextU64();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(word >> (8 * b));
    }
  }
  if (i < out.size()) {
    uint64_t word = NextU64();
    for (; i < out.size(); ++i) {
      out[i] = static_cast<uint8_t>(word);
      word >>= 8;
    }
  }
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  LASTCPU_CHECK(n > 0, "ZipfGenerator: empty domain");
  LASTCPU_CHECK(theta > 0.0 && theta < 1.0, "ZipfGenerator: theta must be in (0,1), got %f", theta);
  zeta2theta_ = Zeta(2, theta);
  zetan_ = Zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  auto v = static_cast<uint64_t>(static_cast<double>(n_) *
                                 std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace lastcpu::sim
