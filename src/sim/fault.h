// Seed-deterministic fault injection for the control and data planes.
//
// The paper's open questions are about the *viability* of a machine whose
// devices coordinate with no CPU to clean up after them: what happens when a
// control message is lost, duplicated, delayed, or delivered out of order?
// Following gem5's reproducible-simulation discipline, faults here are part
// of the deterministic model: a FaultPlan holds per-message probabilities, a
// FaultInjector draws from one seeded sim::Rng, and the same (seed, plan)
// always yields the same fault sequence. The bus consults the injector on
// every message send; the fabric consults it on every doorbell.
#ifndef SRC_SIM_FAULT_H_
#define SRC_SIM_FAULT_H_

#include <cstdint>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace lastcpu::sim {

// Sentinel for PartitionSpec::segment_b: the partition isolates segment_a
// from EVERY other segment (a dead inter-segment router port) rather than
// severing one pairwise link.
inline constexpr uint32_t kAllSegments = 0xFFFFFFFF;

// One scheduled inter-segment link failure. Unlike the probabilistic message
// faults below, partitions are pure schedule: active on [start, heal), with
// heal == Zero meaning "never heals". Deterministic by construction — the
// injector draws no randomness for them.
struct PartitionSpec {
  uint32_t segment_a = 0;
  uint32_t segment_b = kAllSegments;
  Duration start = Duration::Zero();  // absolute sim time the link drops
  Duration heal = Duration::Zero();   // absolute sim time it returns; Zero = never
};

// Probabilities and magnitudes for injected message faults. All-zero
// probabilities (the default) mean a perfectly healthy interconnect; the
// transports skip the injector entirely in that case, so an idle plan cannot
// perturb timing or performance numbers.
struct FaultPlan {
  double drop_probability = 0.0;       // message vanishes on the wire
  double delay_probability = 0.0;      // message arrives late
  double duplicate_probability = 0.0;  // message is delivered twice
  double reorder_probability = 0.0;    // message is held past its successors
  // Extra latency drawn uniformly from [delay_min, delay_max] when delayed.
  Duration delay_min = Duration::Micros(1);
  Duration delay_max = Duration::Micros(10);
  // Upper bound on how long a reordered message may be held; a held message
  // is released early as soon as a later message overtakes it.
  Duration reorder_window = Duration::Micros(5);
  uint64_t seed = 0x1A57C0DE;
  // Scheduled inter-segment partitions (router / segment-link loss). Only
  // consulted by a segmented bus; a flat machine never queries them.
  std::vector<PartitionSpec> partitions;

  bool enabled() const {
    return drop_probability > 0.0 || delay_probability > 0.0 ||
           duplicate_probability > 0.0 || reorder_probability > 0.0 ||
           !partitions.empty();
  }
};

// What the injector decided for one message. At most one of drop/reorder is
// set; delay and duplicate may combine with either being clear.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  Duration extra_delay = Duration::Zero();
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Draws the fault decision for the next message. The draw sequence depends
  // only on (plan.seed, call count), keeping runs reproducible.
  FaultDecision Decide();

  // True when the link between segments `a` and `b` is severed at `now`.
  // Pure schedule lookup: no draw, no counter, so transports may call it
  // freely without perturbing the fault sequence.
  bool PartitionActive(uint32_t a, uint32_t b, SimTime now) const;

  // Earliest heal instant after `now` for a partition covering (a, b), or
  // SimTime::Max() if every covering spec is permanent. Only meaningful when
  // PartitionActive(a, b, now) is true.
  SimTime PartitionHealTime(uint32_t a, uint32_t b, SimTime now) const;

  const FaultPlan& plan() const { return plan_; }

  // Injection counters, for tests and the machine's metrics export.
  uint64_t decisions() const { return decisions_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t delayed() const { return delayed_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t reordered() const { return reordered_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  uint64_t decisions_ = 0;
  uint64_t dropped_ = 0;
  uint64_t delayed_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t reordered_ = 0;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_FAULT_H_
