// Seed-deterministic fault injection for the control and data planes.
//
// The paper's open questions are about the *viability* of a machine whose
// devices coordinate with no CPU to clean up after them: what happens when a
// control message is lost, duplicated, delayed, or delivered out of order?
// Following gem5's reproducible-simulation discipline, faults here are part
// of the deterministic model: a FaultPlan holds per-message probabilities, a
// FaultInjector draws from one seeded sim::Rng, and the same (seed, plan)
// always yields the same fault sequence. The bus consults the injector on
// every message send; the fabric consults it on every doorbell.
#ifndef SRC_SIM_FAULT_H_
#define SRC_SIM_FAULT_H_

#include <cstdint>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace lastcpu::sim {

// Probabilities and magnitudes for injected message faults. All-zero
// probabilities (the default) mean a perfectly healthy interconnect; the
// transports skip the injector entirely in that case, so an idle plan cannot
// perturb timing or performance numbers.
struct FaultPlan {
  double drop_probability = 0.0;       // message vanishes on the wire
  double delay_probability = 0.0;      // message arrives late
  double duplicate_probability = 0.0;  // message is delivered twice
  double reorder_probability = 0.0;    // message is held past its successors
  // Extra latency drawn uniformly from [delay_min, delay_max] when delayed.
  Duration delay_min = Duration::Micros(1);
  Duration delay_max = Duration::Micros(10);
  // Upper bound on how long a reordered message may be held; a held message
  // is released early as soon as a later message overtakes it.
  Duration reorder_window = Duration::Micros(5);
  uint64_t seed = 0x1A57C0DE;

  bool enabled() const {
    return drop_probability > 0.0 || delay_probability > 0.0 ||
           duplicate_probability > 0.0 || reorder_probability > 0.0;
  }
};

// What the injector decided for one message. At most one of drop/reorder is
// set; delay and duplicate may combine with either being clear.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool reorder = false;
  Duration extra_delay = Duration::Zero();
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  // Draws the fault decision for the next message. The draw sequence depends
  // only on (plan.seed, call count), keeping runs reproducible.
  FaultDecision Decide();

  const FaultPlan& plan() const { return plan_; }

  // Injection counters, for tests and the machine's metrics export.
  uint64_t decisions() const { return decisions_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t delayed() const { return delayed_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t reordered() const { return reordered_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  uint64_t decisions_ = 0;
  uint64_t dropped_ = 0;
  uint64_t delayed_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t reordered_ = 0;
};

}  // namespace lastcpu::sim

#endif  // SRC_SIM_FAULT_H_
