#include "src/sim/time.h"

#include <cstdio>

namespace lastcpu::sim {
namespace {

std::string FormatNanos(uint64_t nanos) {
  char buf[48];
  if (nanos < 10'000) {
    std::snprintf(buf, sizeof(buf), "%luns", static_cast<unsigned long>(nanos));
  } else if (nanos < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fus", static_cast<double>(nanos) / 1e3);
  } else if (nanos < 10'000'000'000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(nanos) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(nanos) / 1e9);
  }
  return buf;
}

}  // namespace

std::string Duration::ToString() const { return FormatNanos(nanos_); }

std::string SimTime::ToString() const { return FormatNanos(nanos_); }

}  // namespace lastcpu::sim
