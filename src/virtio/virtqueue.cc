#include "src/virtio/virtqueue.h"

#include "src/base/check.h"

namespace lastcpu::virtio {
namespace {

constexpr uint64_t Align8(uint64_t v) { return (v + 7) & ~uint64_t{7}; }

bool IsPowerOfTwo(uint16_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

VirtqueueLayout::VirtqueueLayout(VirtAddr base, uint16_t depth) : base_(base), depth_(depth) {
  LASTCPU_CHECK(IsPowerOfTwo(depth), "virtqueue depth must be a power of two, got %u", depth);
  uint64_t desc_bytes = uint64_t{16} * depth;
  avail_ = base_ + desc_bytes;
  used_ = VirtAddr(Align8(avail_.raw + 4 + uint64_t{2} * depth));
}

uint64_t VirtqueueLayout::BytesRequired(uint16_t depth) {
  LASTCPU_CHECK(IsPowerOfTwo(depth), "virtqueue depth must be a power of two, got %u", depth);
  uint64_t desc_bytes = uint64_t{16} * depth;
  uint64_t avail_bytes = 4 + uint64_t{2} * depth;
  uint64_t used_bytes = 4 + uint64_t{8} * depth;
  return Align8(desc_bytes + avail_bytes) + used_bytes;
}

VirtAddr VirtqueueLayout::DescAddr(uint16_t index) const {
  LASTCPU_CHECK(index < depth_, "descriptor index out of range");
  return base_ + uint64_t{16} * index;
}

// --- driver side -------------------------------------------------------------

VirtqueueDriver::VirtqueueDriver(fabric::Fabric* fabric, DeviceId self, Pasid pasid, VirtAddr base,
                                 uint16_t depth)
    : fabric_(fabric), self_(self), pasid_(pasid), layout_(base, depth), chain_length_(depth, 0) {
  free_list_.reserve(depth);
  // Stack of free descriptors, lowest index on top for determinism.
  for (uint16_t i = depth; i > 0; --i) {
    free_list_.push_back(static_cast<uint16_t>(i - 1));
  }
}

Status VirtqueueDriver::ReadU16(VirtAddr addr, uint16_t* out) {
  uint8_t buf[2];
  fabric::AccessResult r = fabric_->MemRead(self_, pasid_, addr, buf);
  accrued_ += r.cost;
  if (!r.status.ok()) {
    return r.status;
  }
  *out = static_cast<uint16_t>(buf[0] | (buf[1] << 8));
  return OkStatus();
}

Status VirtqueueDriver::WriteU16(VirtAddr addr, uint16_t value) {
  uint8_t buf[2] = {static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8)};
  fabric::AccessResult r = fabric_->MemWrite(self_, pasid_, addr, buf);
  accrued_ += r.cost;
  return r.status;
}

Status VirtqueueDriver::WriteDesc(uint16_t index, VirtAddr addr, uint32_t len, uint16_t flags,
                                  uint16_t next) {
  uint8_t buf[16];
  uint64_t a = addr.raw;
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<uint8_t>(a >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) {
    buf[8 + i] = static_cast<uint8_t>(len >> (8 * i));
  }
  buf[12] = static_cast<uint8_t>(flags);
  buf[13] = static_cast<uint8_t>(flags >> 8);
  buf[14] = static_cast<uint8_t>(next);
  buf[15] = static_cast<uint8_t>(next >> 8);
  fabric::AccessResult r = fabric_->MemWrite(self_, pasid_, layout_.DescAddr(index), buf);
  accrued_ += r.cost;
  return r.status;
}

Status VirtqueueDriver::Initialize() {
  LASTCPU_RETURN_IF_ERROR(WriteU16(layout_.AvailFlags(), 0));
  LASTCPU_RETURN_IF_ERROR(WriteU16(layout_.AvailIdx(), 0));
  LASTCPU_RETURN_IF_ERROR(WriteU16(layout_.UsedFlags(), 0));
  LASTCPU_RETURN_IF_ERROR(WriteU16(layout_.UsedIdx(), 0));
  avail_idx_ = 0;
  last_used_seen_ = 0;
  return OkStatus();
}

Result<uint16_t> VirtqueueDriver::Submit(std::span<const BufferDesc> chain) {
  if (chain.empty()) {
    return InvalidArgument("empty descriptor chain");
  }
  if (chain.size() > free_list_.size()) {
    return ResourceExhausted("virtqueue full");
  }
  // Claim descriptors.
  std::vector<uint16_t>& indices = scratch_indices_;
  indices.resize(chain.size());
  for (auto& index : indices) {
    index = free_list_.back();
    free_list_.pop_back();
  }
  // Write the chain back-to-front so `next` links are known.
  for (size_t i = 0; i < chain.size(); ++i) {
    uint16_t flags = chain[i].device_writes ? kDescFlagWrite : 0;
    uint16_t next = 0;
    if (i + 1 < chain.size()) {
      flags |= kDescFlagNext;
      next = indices[i + 1];
    }
    Status wrote = WriteDesc(indices[i], chain[i].addr, chain[i].len, flags, next);
    if (!wrote.ok()) {
      // Return claimed descriptors before surfacing the fault.
      for (uint16_t index : indices) {
        free_list_.push_back(index);
      }
      return wrote;
    }
  }
  uint16_t head = indices[0];
  chain_length_[head] = static_cast<uint16_t>(chain.size());
  // Publish: ring slot, then the index increment (the device reads idx first).
  uint16_t slot = static_cast<uint16_t>(avail_idx_ & (layout_.depth() - 1));
  LASTCPU_RETURN_IF_ERROR(WriteU16(layout_.AvailRing(slot), head));
  ++avail_idx_;
  LASTCPU_RETURN_IF_ERROR(WriteU16(layout_.AvailIdx(), avail_idx_));
  return head;
}

Result<std::optional<UsedElem>> VirtqueueDriver::PollUsed() {
  uint16_t device_used_idx = 0;
  LASTCPU_RETURN_IF_ERROR(ReadU16(layout_.UsedIdx(), &device_used_idx));
  if (device_used_idx == last_used_seen_) {
    return std::optional<UsedElem>();
  }
  uint16_t slot = static_cast<uint16_t>(last_used_seen_ & (layout_.depth() - 1));
  uint8_t buf[8];
  fabric::AccessResult r = fabric_->MemRead(self_, pasid_, layout_.UsedRing(slot), buf);
  accrued_ += r.cost;
  if (!r.status.ok()) {
    return r.status;
  }
  UsedElem elem;
  elem.head = static_cast<uint16_t>(buf[0] | (buf[1] << 8));
  elem.written = static_cast<uint32_t>(buf[4]) | static_cast<uint32_t>(buf[5]) << 8 |
                 static_cast<uint32_t>(buf[6]) << 16 | static_cast<uint32_t>(buf[7]) << 24;
  ++last_used_seen_;
  // Recycle the chain's descriptors.
  if (elem.head < layout_.depth() && chain_length_[elem.head] > 0) {
    // The chain indices were claimed contiguously off the free stack; we only
    // recorded the head and length, so walk the descriptor table to recover
    // the links.
    uint16_t count = chain_length_[elem.head];
    chain_length_[elem.head] = 0;
    uint16_t current = elem.head;
    for (uint16_t i = 0; i < count; ++i) {
      free_list_.push_back(current);
      if (i + 1 < count) {
        uint8_t desc[16];
        fabric::AccessResult dr = fabric_->MemRead(self_, pasid_, layout_.DescAddr(current), desc);
        accrued_ += dr.cost;
        if (!dr.status.ok()) {
          return dr.status;
        }
        current = static_cast<uint16_t>(desc[14] | (desc[15] << 8));
      }
    }
  }
  return std::optional<UsedElem>(elem);
}

sim::Duration VirtqueueDriver::TakeAccruedCost() {
  sim::Duration out = accrued_;
  accrued_ = sim::Duration::Zero();
  return out;
}

// --- device side -------------------------------------------------------------

VirtqueueDevice::VirtqueueDevice(fabric::Fabric* fabric, DeviceId self, Pasid pasid, VirtAddr base,
                                 uint16_t depth)
    : fabric_(fabric), self_(self), pasid_(pasid), layout_(base, depth) {}

Status VirtqueueDevice::ReadU16(VirtAddr addr, uint16_t* out) {
  uint8_t buf[2];
  fabric::AccessResult r = fabric_->MemRead(self_, pasid_, addr, buf);
  accrued_ += r.cost;
  if (!r.status.ok()) {
    return r.status;
  }
  *out = static_cast<uint16_t>(buf[0] | (buf[1] << 8));
  return OkStatus();
}

Status VirtqueueDevice::WriteU16(VirtAddr addr, uint16_t value) {
  uint8_t buf[2] = {static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8)};
  fabric::AccessResult r = fabric_->MemWrite(self_, pasid_, addr, buf);
  accrued_ += r.cost;
  return r.status;
}

Result<std::optional<Chain>> VirtqueueDevice::PopAvail() {
  uint16_t driver_avail_idx = 0;
  LASTCPU_RETURN_IF_ERROR(ReadU16(layout_.AvailIdx(), &driver_avail_idx));
  if (driver_avail_idx == last_avail_seen_) {
    return std::optional<Chain>();
  }
  uint16_t slot = static_cast<uint16_t>(last_avail_seen_ & (layout_.depth() - 1));
  uint16_t head = 0;
  LASTCPU_RETURN_IF_ERROR(ReadU16(layout_.AvailRing(slot), &head));
  ++last_avail_seen_;

  Chain chain;
  chain.head = head;
  uint16_t current = head;
  for (uint16_t hops = 0; hops <= layout_.depth(); ++hops) {
    if (current >= layout_.depth()) {
      return InvalidArgument("descriptor index out of range");
    }
    uint8_t desc[16];
    fabric::AccessResult r = fabric_->MemRead(self_, pasid_, layout_.DescAddr(current), desc);
    accrued_ += r.cost;
    if (!r.status.ok()) {
      return r.status;
    }
    uint64_t addr = 0;
    for (int i = 7; i >= 0; --i) {
      addr = (addr << 8) | desc[i];
    }
    uint32_t len = static_cast<uint32_t>(desc[8]) | static_cast<uint32_t>(desc[9]) << 8 |
                   static_cast<uint32_t>(desc[10]) << 16 | static_cast<uint32_t>(desc[11]) << 24;
    uint16_t flags = static_cast<uint16_t>(desc[12] | (desc[13] << 8));
    uint16_t next = static_cast<uint16_t>(desc[14] | (desc[15] << 8));
    chain.buffers.push_back(BufferDesc{VirtAddr(addr), len, (flags & kDescFlagWrite) != 0});
    if ((flags & kDescFlagNext) == 0) {
      return std::optional<Chain>(std::move(chain));
    }
    current = next;
  }
  return InvalidArgument("descriptor chain loops");
}

Status VirtqueueDevice::PushUsed(uint16_t head, uint32_t written) {
  uint16_t slot = static_cast<uint16_t>(used_idx_ & (layout_.depth() - 1));
  uint8_t buf[8];
  buf[0] = static_cast<uint8_t>(head);
  buf[1] = static_cast<uint8_t>(head >> 8);
  buf[2] = 0;
  buf[3] = 0;
  for (int i = 0; i < 4; ++i) {
    buf[4 + i] = static_cast<uint8_t>(written >> (8 * i));
  }
  fabric::AccessResult r = fabric_->MemWrite(self_, pasid_, layout_.UsedRing(slot), buf);
  accrued_ += r.cost;
  if (!r.status.ok()) {
    return r.status;
  }
  ++used_idx_;
  return WriteU16(layout_.UsedIdx(), used_idx_);
}

sim::Duration VirtqueueDevice::TakeAccruedCost() {
  sim::Duration out = accrued_;
  accrued_ = sim::Duration::Zero();
  return out;
}

}  // namespace lastcpu::virtio
