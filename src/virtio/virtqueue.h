// VIRTIO 1.1-style split virtqueues over shared memory (paper Sec. 2.1).
//
// The paper proposes VIRTIO as the standard interface for exposing services
// from self-managing devices. We implement the split-queue *semantics*
// faithfully: a descriptor table plus avail/used rings living in shared
// memory, with the driver (client device) and device (service provider) each
// accessing them through their own IOMMU mapping of the same physical pages.
// The PCI transport is out of scope (DESIGN.md non-goals); notification rides
// the fabric doorbell.
//
// Ring layout at `base` for depth N (N a power of two):
//   [0,            16N)  descriptor table: {addr u64, len u32, flags u16, next u16}
//   [16N,          16N + 4 + 2N)  avail: flags u16, idx u16, ring[N] u16
//   [A,            A + 4 + 8N)    used:  flags u16, idx u16, ring[N] {id u32, len u32}
// where A = align8(16N + 4 + 2N).
#ifndef SRC_VIRTIO_VIRTQUEUE_H_
#define SRC_VIRTIO_VIRTQUEUE_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "src/base/status.h"
#include "src/base/types.h"
#include "src/fabric/fabric.h"
#include "src/sim/time.h"

namespace lastcpu::virtio {

// Descriptor flags (VIRTIO spec values).
inline constexpr uint16_t kDescFlagNext = 1;   // chain continues at `next`
inline constexpr uint16_t kDescFlagWrite = 2;  // device writes this buffer

// One buffer in a request chain, in the client's virtual address space.
struct BufferDesc {
  VirtAddr addr;
  uint32_t len = 0;
  bool device_writes = false;  // true for response buffers
};

// Completion record from the used ring.
struct UsedElem {
  uint16_t head = 0;     // head descriptor index of the completed chain
  uint32_t written = 0;  // bytes the device wrote into writable buffers
};

// Shared geometry helpers for both queue ends.
class VirtqueueLayout {
 public:
  VirtqueueLayout(VirtAddr base, uint16_t depth);

  // Total shared-memory bytes a queue of `depth` needs.
  static uint64_t BytesRequired(uint16_t depth);

  uint16_t depth() const { return depth_; }
  VirtAddr DescAddr(uint16_t index) const;
  VirtAddr AvailFlags() const { return avail_; }
  VirtAddr AvailIdx() const { return avail_ + 2; }
  VirtAddr AvailRing(uint16_t slot) const { return avail_ + 4 + uint64_t{2} * slot; }
  VirtAddr UsedFlags() const { return used_; }
  VirtAddr UsedIdx() const { return used_ + 2; }
  VirtAddr UsedRing(uint16_t slot) const { return used_ + 4 + uint64_t{8} * slot; }

 private:
  VirtAddr base_;
  VirtAddr avail_;
  VirtAddr used_;
  uint16_t depth_;
};

// The request-submitting end (lives in the client device, e.g. the NIC's KVS
// engine submitting file reads to the SSD).
class VirtqueueDriver {
 public:
  // `self` is the client device (its IOMMU translates every ring access);
  // `pasid` selects the shared application address space.
  VirtqueueDriver(fabric::Fabric* fabric, DeviceId self, Pasid pasid, VirtAddr base,
                  uint16_t depth);

  // Zeroes ring indices; call once after the shared memory is mapped.
  Status Initialize();

  // Writes descriptors for `chain` and publishes it on the avail ring.
  // Returns the head descriptor index (the completion correlator).
  // Takes a span so the per-request descriptor list never forces a heap
  // allocation; the initializer_list overload keeps `Submit({a, b})` call
  // sites working from stack-backed storage.
  Result<uint16_t> Submit(std::span<const BufferDesc> chain);
  Result<uint16_t> Submit(std::initializer_list<BufferDesc> chain) {
    return Submit(std::span<const BufferDesc>(chain.begin(), chain.size()));
  }

  // Consumes one completion from the used ring, if present.
  Result<std::optional<UsedElem>> PollUsed();

  // Free descriptors remaining (each chain consumes chain.size() of them).
  uint16_t FreeDescriptors() const { return static_cast<uint16_t>(free_list_.size()); }

  // Modeled time spent on ring/descriptor accesses since the last call.
  // Callers fold this into their own scheduling.
  sim::Duration TakeAccruedCost();

 private:
  Status WriteDesc(uint16_t index, VirtAddr addr, uint32_t len, uint16_t flags, uint16_t next);
  Status ReadU16(VirtAddr addr, uint16_t* out);
  Status WriteU16(VirtAddr addr, uint16_t value);

  fabric::Fabric* fabric_;
  DeviceId self_;
  Pasid pasid_;
  VirtqueueLayout layout_;
  std::vector<uint16_t> free_list_;
  // Reused across Submit calls (capacity persists) so claiming a chain's
  // descriptors costs no allocation in steady state.
  std::vector<uint16_t> scratch_indices_;
  // Shadow copies of ring state (the driver owns avail.idx).
  uint16_t avail_idx_ = 0;
  uint16_t last_used_seen_ = 0;
  // Chain length per head, to recycle descriptors on completion.
  std::vector<uint16_t> chain_length_;
  sim::Duration accrued_ = sim::Duration::Zero();
};

// A chain popped from the avail ring, resolved into buffers.
struct Chain {
  uint16_t head = 0;
  std::vector<BufferDesc> buffers;
};

// The service-provider end (lives in the serving device, e.g. the SSD's file
// service popping requests).
class VirtqueueDevice {
 public:
  VirtqueueDevice(fabric::Fabric* fabric, DeviceId self, Pasid pasid, VirtAddr base,
                  uint16_t depth);

  // Pops the next pending chain from the avail ring, reading its descriptors.
  Result<std::optional<Chain>> PopAvail();

  // Publishes a completion for `head` on the used ring.
  Status PushUsed(uint16_t head, uint32_t written);

  sim::Duration TakeAccruedCost();

 private:
  Status ReadU16(VirtAddr addr, uint16_t* out);
  Status WriteU16(VirtAddr addr, uint16_t value);

  fabric::Fabric* fabric_;
  DeviceId self_;
  Pasid pasid_;
  VirtqueueLayout layout_;
  uint16_t last_avail_seen_ = 0;
  uint16_t used_idx_ = 0;
  sim::Duration accrued_ = sim::Duration::Zero();
};

}  // namespace lastcpu::virtio

#endif  // SRC_VIRTIO_VIRTQUEUE_H_
