// Virtual-address slab layout for sharded memory controllers.
//
// Every controller shard owns one giant VA slab, so the owner of a virtual
// address is a pure function of its high bits: no directory lookups on the
// grant/free fast path and no rebalancing when devices come and go. Shard k
// bump-allocates inside [k * 2^35, (k+1) * 2^35). Shard 0's bumps start at
// slab base + the classic unsharded bump base (1 << 32), so a machine with a
// single shard produces exactly the same virtual addresses as the pre-rack
// single-controller machine — that identity is what keeps old goldens
// bit-identical.
#ifndef SRC_MEMDEV_SHARD_LAYOUT_H_
#define SRC_MEMDEV_SHARD_LAYOUT_H_

#include <cstdint>

#include "src/base/types.h"

namespace lastcpu::memdev {

// log2 of the per-shard VA slab size. 2^35 = 32 GiB per shard keeps every
// slab inside the IOMMU's 39-bit (3-level) page-table space while leaving 16
// slabs — far more headroom than any modeled rack's shard count or a shard's
// physical capacity. Shard 0's slab still contains the classic bump base
// (1 << 32), preserving the flat-machine VA identity.
inline constexpr uint64_t kShardVaShift = 35;
inline constexpr uint64_t kShardVaStride = uint64_t{1} << kShardVaShift;

constexpr uint64_t ShardVaBase(uint32_t shard) { return shard * kShardVaStride; }
constexpr uint64_t ShardVaLimit(uint32_t shard) { return (shard + uint64_t{1}) * kShardVaStride; }

// The shard whose slab contains `va`, in a machine with `num_shards` shards.
// Addresses below the first slab boundary (application-hinted low VAs) and
// addresses past the last slab clamp to the nearest owner, so every address
// has exactly one home even when a client hints outside the slab scheme.
constexpr uint32_t ShardForVa(VirtAddr va, uint32_t num_shards) {
  uint64_t shard = va.raw >> kShardVaShift;
  return shard >= num_shards ? num_shards - 1 : static_cast<uint32_t>(shard);
}

}  // namespace lastcpu::memdev

#endif  // SRC_MEMDEV_SHARD_LAYOUT_H_
