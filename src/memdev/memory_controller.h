// The memory controller: a self-managing device that owns DRAM (paper
// Sec. 2.2 "Memory management", modeled on LegoOS's mComponent).
//
// It is the *policy* side of memory: it runs the physical allocator and the
// per-application allocation tables, and decides who may map what. The
// *mechanism* — programming IOMMUs — belongs to the system bus, which acts
// only on this controller's MapDirectives. The controller cannot touch
// another device's IOMMU directly, and no other device can direct mappings.
//
// Protocol, matching Figure 2:
//   MemAllocRequest  (device -> controller)   allocate + map into requester
//   GrantRequest     (owner -> bus -> here)   map an owned region into grantee
//   RevokeRequest    (owner -> bus -> here)   unmap it again
//   MemFreeRequest   (owner -> bus -> here)   release an allocation
//   TeardownApp      (bus broadcast)          drop everything for a PASID
#ifndef SRC_MEMDEV_MEMORY_CONTROLLER_H_
#define SRC_MEMDEV_MEMORY_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/dev/device.h"
#include "src/mem/buddy_allocator.h"
#include "src/mem/physical_memory.h"

namespace lastcpu::memdev {

struct MemoryControllerConfig {
  // Per-application quota; 0 = unlimited.
  uint64_t max_bytes_per_pasid = 0;
  // Where per-application virtual address assignment starts when no hint is
  // given (low VA space is left to the application's own layout). In a
  // sharded machine this is an offset into the shard's VA slab.
  uint64_t va_bump_base = uint64_t{1} << 32;

  // --- shard fields (all zero = classic single controller owning all DRAM) --
  // The slice of physical memory this controller owns: frames
  // [frame_base, frame_base + frame_count). frame_count == 0 means the whole
  // of physical memory (unsharded).
  uint64_t frame_base = 0;
  uint64_t frame_count = 0;
  // The VA slab this shard bump-allocates in: [va_base, va_limit).
  // va_limit == 0 means unbounded (unsharded). See shard_layout.h.
  uint64_t va_base = 0;
  uint64_t va_limit = 0;
  // The bus segment the shard sits on; recorded in its directory entry.
  uint32_t segment = 0;
  // After a restart that wiped the shard's tables, new allocations are
  // refused for this long so surviving clients can re-assert their leases
  // first (their frames must be re-reserved before the allocator may hand
  // them out again). Zero disables the window. Flat controllers keep their
  // battery-backed tables across resets and never use it.
  sim::Duration recovery_window = sim::Duration::Micros(300);
};

// One live allocation in the table.
struct Allocation {
  VirtAddr vaddr;
  uint64_t pages = 0;
  uint64_t first_frame = 0;
  DeviceId owner;        // the device that requested it (may grant it onward)
  Access owner_access = Access::kReadWrite;
  std::vector<std::pair<DeviceId, Access>> grants;
};

class MemoryController : public dev::Device {
 public:
  MemoryController(DeviceId id, const dev::DeviceContext& context, mem::PhysicalMemory* memory,
                   MemoryControllerConfig config = {}, dev::DeviceConfig device_config = {});

  // Introspection for tests and reports.
  uint64_t AllocatedBytes(Pasid pasid) const;
  uint64_t allocation_count() const;
  const mem::BuddyAllocator& allocator() const { return allocator_; }
  // Allocations the device still owns / grants it still holds; both must be
  // zero after the device is permanently failed (the reclamation invariant).
  uint64_t AllocationsOwnedBy(DeviceId device) const;
  uint64_t GrantsHeldBy(DeviceId device) const;
  // True if `pasid`'s table holds an allocation starting exactly at `vaddr`
  // (chaos-test durability probe: every acked allocation must survive on
  // exactly one shard after a failover).
  bool HasAllocationAt(Pasid pasid, VirtAddr vaddr) const;
  bool sharded() const { return config_.frame_count != 0; }
  uint64_t capacity_bytes() const { return allocator_.total_frames() * kPageSize; }
  const MemoryControllerConfig& controller_config() const { return config_; }
  // Registration epoch: starts at 1, bumped on every table-wiping restart.
  // Stamped into MapDirectives (the bus fences older epochs) and the shard's
  // directory announce.
  uint64_t epoch() const { return epoch_; }
  // Frame ranges adopted from another shard's slice via lease re-assertion
  // after a takeover (not in this shard's own allocator).
  uint64_t foreign_frame_ranges() const { return foreign_frames_.size(); }

 protected:
  void OnAlive() override;
  void OnReset() override;
  void OnMessage(const proto::Message& message) override;
  void OnTeardown(Pasid pasid) override;
  void OnPeerFailed(DeviceId device) override;
  void OnPeerPermanentlyFailed(DeviceId device) override;

 private:
  using Table = std::map<uint64_t, Allocation>;  // keyed by start vpage

  void HandleAlloc(const proto::Message& message);
  void HandleFree(const proto::Message& message);
  void HandleAllocBatch(const proto::Message& message);
  void HandleFreeBatch(const proto::Message& message);
  void HandleGrant(const proto::Message& message);
  void HandleRevoke(const proto::Message& message);
  void HandleLeaseReassert(const proto::Message& message);

  // True while the post-restart recovery window is open (new allocations are
  // refused; lease re-assertions are always admitted).
  bool Recovering();

  // Claims [first_frame, first_frame + pages) outside this shard's own frame
  // slice for a re-asserted lease; fails on overlap with an already-adopted
  // range (the double-ownership guard for cross-shard takeover).
  bool AdoptForeignFrames(uint64_t first_frame, uint64_t pages);

  // Picks a virtual placement for `pages` in `pasid`'s table, honoring the
  // hint when it does not overlap an existing allocation.
  Result<uint64_t> PlaceVirtual(Pasid pasid, uint64_t pages, VirtAddr hint);

  // True if [vpage, vpage+pages) overlaps any allocation in the table.
  static bool Overlaps(const Table& table, uint64_t vpage, uint64_t pages);

  // Finds the allocation containing [vaddr, vaddr+bytes), or null.
  Allocation* FindCovering(Pasid pasid, VirtAddr vaddr, uint64_t bytes);

  // Emits a MapDirective to the bus and completes `done` when the mapping is
  // confirmed (or with the typed error). Directives are idempotent (mapping
  // the same entries twice is a no-op), so they opt into bounded retries.
  void SendDirective(DeviceId target, Pasid pasid, std::vector<proto::MapEntry> entries,
                     bool unmap, Callback<void> done);

  // Builds identity-ish map entries for an allocation subrange.
  static std::vector<proto::MapEntry> EntriesFor(const Allocation& allocation, uint64_t from_vpage,
                                                 uint64_t pages, Access access);

  // Releases an allocation's frames and erases it from the table. Any IOMMU
  // unmapping must already have been directed.
  void ReleaseAllocation(Pasid pasid, Table::iterator it);

  mem::BuddyAllocator allocator_;
  mem::PhysicalMemory* memory_;
  MemoryControllerConfig config_;
  std::map<Pasid, Table> tables_;
  std::map<Pasid, uint64_t> next_vpage_;
  std::map<Pasid, uint64_t> bytes_allocated_;
  // Adopted frame ranges (first_frame -> pages) backing re-asserted leases
  // whose frames live in a failed shard's slice.
  std::map<uint64_t, uint64_t> foreign_frames_;
  uint64_t epoch_ = 1;
  sim::SimTime recovering_until_;
};

}  // namespace lastcpu::memdev

#endif  // SRC_MEMDEV_MEMORY_CONTROLLER_H_
