#include "src/memdev/memory_controller.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/base/check.h"
#include "src/dev/service.h"

namespace lastcpu::memdev {

MemoryController::MemoryController(DeviceId id, const dev::DeviceContext& context,
                                   mem::PhysicalMemory* memory, MemoryControllerConfig config,
                                   dev::DeviceConfig device_config)
    : dev::Device(id, "memctrl", context, device_config),
      allocator_(config.frame_count != 0 ? config.frame_count : memory->num_frames()),
      memory_(memory),
      config_(config) {
  LASTCPU_CHECK(config.frame_base + allocator_.total_frames() <= memory->num_frames(),
                "controller shard extends past physical memory");
  // Announce the memory service: this is what makes the bus treat this device
  // as the memory resource controller.
  class MemoryService : public dev::Service {
   public:
    explicit MemoryService(DeviceId provider)
        : Service(proto::ServiceDescriptor{provider, proto::ServiceType::kMemory, "dram", 0}) {}
    Result<proto::OpenResponse> Open(DeviceId, const proto::OpenRequest&) override {
      return Unimplemented("memory is requested via MemAllocRequest messages");
    }
  };
  AddService(std::make_unique<MemoryService>(id));
}

void MemoryController::OnAlive() {
  if (!sharded()) {
    return;
  }
  // Register this shard's VA slab with the bus router so vaddr-carrying
  // control messages (grant/revoke/free) route here without a lookup table on
  // the client. Re-announcing after a restart is idempotent.
  proto::ShardRecord shard;
  shard.device = id();
  shard.segment = config_.segment;
  shard.va_base = config_.va_base;
  shard.va_limit = config_.va_limit;
  shard.capacity_bytes = capacity_bytes();
  shard.epoch = epoch_;
  SendOneWay(kBusDevice, proto::MemShardAnnounce{shard});
  // Coming back from a table-wiping restart: hold new allocations until the
  // old clients have had a chance to re-assert their leases.
  if (epoch_ > 1 && config_.recovery_window > sim::Duration::Zero()) {
    recovering_until_ = simulator()->Now() + config_.recovery_window;
  }
}

void MemoryController::OnReset() {
  if (sharded()) {
    // Shard tables are volatile (no battery-backed NVRAM in the chassis):
    // a restart loses them, and clients rebuild the state by re-asserting
    // their leases. Bumping the epoch makes the bus fence any directive this
    // controller issued before it died.
    tables_.clear();
    next_vpage_.clear();
    bytes_allocated_.clear();
    foreign_frames_.clear();
    allocator_ = mem::BuddyAllocator(config_.frame_count);
    ++epoch_;
    stats().GetCounter("shard_state_resets").Increment();
    TraceEvent("shard-reset", "epoch=" + std::to_string(epoch_));
  }
  dev::Device::OnReset();
}

bool MemoryController::Recovering() {
  return recovering_until_ > sim::SimTime::Zero() && simulator()->Now() < recovering_until_;
}

uint64_t MemoryController::AllocatedBytes(Pasid pasid) const {
  auto it = bytes_allocated_.find(pasid);
  return it == bytes_allocated_.end() ? 0 : it->second;
}

uint64_t MemoryController::allocation_count() const {
  uint64_t count = 0;
  for (const auto& [pasid, table] : tables_) {
    count += table.size();
  }
  return count;
}

void MemoryController::OnMessage(const proto::Message& message) {
  switch (message.type()) {
    case proto::MessageType::kMemAllocRequest:
      HandleAlloc(message);
      return;
    case proto::MessageType::kMemFreeRequest:
      HandleFree(message);
      return;
    case proto::MessageType::kMemAllocBatchRequest:
      HandleAllocBatch(message);
      return;
    case proto::MessageType::kMemFreeBatchRequest:
      HandleFreeBatch(message);
      return;
    case proto::MessageType::kGrantRequest:
      HandleGrant(message);
      return;
    case proto::MessageType::kRevokeRequest:
      HandleRevoke(message);
      return;
    case proto::MessageType::kLeaseReassertRequest:
      HandleLeaseReassert(message);
      return;
    default:
      dev::Device::OnMessage(message);
      return;
  }
}

bool MemoryController::Overlaps(const Table& table, uint64_t vpage, uint64_t pages) {
  // Candidate allocation at or after vpage.
  auto next = table.lower_bound(vpage);
  if (next != table.end() && next->first < vpage + pages) {
    return true;
  }
  // Allocation starting before vpage may still cover it.
  if (next != table.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.pages > vpage) {
      return true;
    }
  }
  return false;
}

Result<uint64_t> MemoryController::PlaceVirtual(Pasid pasid, uint64_t pages, VirtAddr hint) {
  Table& table = tables_[pasid];
  if (hint.raw != 0) {
    if (hint.offset() != 0) {
      return InvalidArgument("vaddr hint not page-aligned");
    }
    if (Overlaps(table, hint.page(), pages)) {
      return AlreadyExists("hinted region overlaps an existing allocation");
    }
    return hint.page();
  }
  auto [it, inserted] =
      next_vpage_.try_emplace(pasid, (config_.va_base + config_.va_bump_base) >> kPageShift);
  (void)inserted;
  uint64_t vpage = it->second;
  while (Overlaps(table, vpage, pages)) {
    vpage += pages;
  }
  if (config_.va_limit != 0 && (vpage + pages) << kPageShift > config_.va_limit) {
    stats().GetCounter("va_slab_rejections").Increment();
    return ResourceExhausted("shard VA slab exhausted");
  }
  it->second = vpage + pages;
  return vpage;
}

Allocation* MemoryController::FindCovering(Pasid pasid, VirtAddr vaddr, uint64_t bytes) {
  auto table_it = tables_.find(pasid);
  if (table_it == tables_.end()) {
    return nullptr;
  }
  Table& table = table_it->second;
  auto next = table.upper_bound(vaddr.page());
  if (next == table.begin()) {
    return nullptr;
  }
  auto it = std::prev(next);
  Allocation& allocation = it->second;
  uint64_t end_vpage = it->first + allocation.pages;
  uint64_t want_end = PageCeil(vaddr.raw + bytes) >> kPageShift;
  if (vaddr.page() >= it->first && want_end <= end_vpage) {
    return &allocation;
  }
  return nullptr;
}

std::vector<proto::MapEntry> MemoryController::EntriesFor(const Allocation& allocation,
                                                          uint64_t from_vpage, uint64_t pages,
                                                          Access access) {
  std::vector<proto::MapEntry> entries;
  entries.reserve(pages);
  uint64_t page_delta = from_vpage - allocation.vaddr.page();
  for (uint64_t i = 0; i < pages; ++i) {
    entries.push_back(
        proto::MapEntry{from_vpage + i, allocation.first_frame + page_delta + i, access});
  }
  return entries;
}

void MemoryController::SendDirective(DeviceId target, Pasid pasid,
                                     std::vector<proto::MapEntry> entries, bool unmap,
                                     Callback<void> done) {
  proto::MapDirective directive;
  directive.target = target;
  directive.pasid = pasid;
  directive.entries = std::move(entries);
  directive.unmap = unmap;
  directive.epoch = epoch_;  // lets the bus fence directives from a past life
  dev::RpcOptions options;
  options.max_attempts = 3;
  rpc().Call<void>(kBusDevice, std::move(directive), options, std::move(done));
}

void MemoryController::HandleAlloc(const proto::Message& message) {
  const auto& request = message.As<proto::MemAllocRequest>();
  if (request.bytes == 0) {
    ReplyError(message, InvalidArgument("zero-byte allocation"));
    return;
  }
  if (!request.pasid.valid()) {
    ReplyError(message, InvalidArgument("allocation without a PASID"));
    return;
  }
  if (Recovering()) {
    // Handing out frames before old leases are re-asserted could double-book
    // memory a surviving client still has mapped.
    stats().GetCounter("recovery_rejections").Increment();
    ReplyError(message, Unavailable("shard recovering: leases re-asserting"));
    return;
  }
  uint64_t pages = PagesForBytes(request.bytes);
  if (config_.max_bytes_per_pasid != 0 &&
      AllocatedBytes(request.pasid) + pages * kPageSize > config_.max_bytes_per_pasid) {
    stats().GetCounter("quota_rejections").Increment();
    ReplyError(message, ResourceExhausted("application memory quota exceeded"));
    return;
  }

  auto vpage = PlaceVirtual(request.pasid, pages, request.vaddr_hint);
  if (!vpage.ok()) {
    ReplyError(message, vpage.status());
    return;
  }
  auto frame = allocator_.Allocate(pages);
  if (!frame.ok()) {
    stats().GetCounter("oom_rejections").Increment();
    ReplyError(message, frame.status());
    return;
  }
  // Frames are allocator-relative; tables and map entries hold the absolute
  // frame so grantees on other shards see real physical addresses.
  uint64_t first_frame = config_.frame_base + *frame;
  // Zero-fill so no application ever sees another's stale data.
  for (uint64_t i = 0; i < pages; ++i) {
    memory_->ZeroFrame(first_frame + i);
  }

  Allocation allocation;
  allocation.vaddr = VirtAddr(*vpage << kPageShift);
  allocation.pages = pages;
  allocation.first_frame = first_frame;
  allocation.owner = message.src;
  allocation.owner_access = request.access;
  tables_[request.pasid].emplace(*vpage, allocation);
  bytes_allocated_[request.pasid] += pages * kPageSize;
  stats().GetCounter("allocations").Increment();
  stats().GetCounter("pages_allocated").Increment(pages);
  TraceEvent("alloc", "pasid=" + std::to_string(request.pasid.value()) +
                          " pages=" + std::to_string(pages));

  // Direct the bus to program the requester's IOMMU; reply only once the
  // mapping is live (Fig. 2 step 6 precedes the response).
  auto entries = EntriesFor(allocation, *vpage, pages, request.access);
  proto::Message original = message;
  VirtAddr vaddr = allocation.vaddr;
  uint64_t bytes = pages * kPageSize;
  SendDirective(message.src, request.pasid, std::move(entries), /*unmap=*/false,
                [this, original, vaddr, bytes, vpage = *vpage, first_frame,
                 pasid = request.pasid](Result<void> mapped) {
                  if (!mapped.ok()) {
                    // Roll back the allocation the mapping never activated.
                    auto table_it = tables_.find(pasid);
                    if (table_it != tables_.end()) {
                      auto it = table_it->second.find(vpage);
                      if (it != table_it->second.end()) {
                        ReleaseAllocation(pasid, it);
                      }
                    }
                    ReplyError(original, mapped.status());
                    return;
                  }
                  Reply(original, proto::MemAllocResponse{vaddr, bytes, first_frame});
                });
}

void MemoryController::HandleAllocBatch(const proto::Message& message) {
  const auto& request = message.As<proto::MemAllocBatchRequest>();
  if (request.bytes == 0 || request.count == 0) {
    ReplyError(message, InvalidArgument("empty batch allocation"));
    return;
  }
  if (!request.pasid.valid()) {
    ReplyError(message, InvalidArgument("allocation without a PASID"));
    return;
  }
  if (Recovering()) {
    stats().GetCounter("recovery_rejections").Increment();
    ReplyError(message, Unavailable("shard recovering: leases re-asserting"));
    return;
  }
  uint64_t pages = PagesForBytes(request.bytes);
  uint64_t total_bytes = request.count * pages * kPageSize;
  if (config_.max_bytes_per_pasid != 0 &&
      AllocatedBytes(request.pasid) + total_bytes > config_.max_bytes_per_pasid) {
    stats().GetCounter("quota_rejections").Increment();
    ReplyError(message, ResourceExhausted("application memory quota exceeded"));
    return;
  }

  // Place and back every region first; the whole lease activates — or rolls
  // back — as one unit.
  std::vector<uint64_t> vpages;
  std::vector<uint64_t> frames;
  std::vector<proto::MapEntry> entries;
  vpages.reserve(request.count);
  frames.reserve(request.count);
  auto rollback = [this, &vpages, pasid = request.pasid] {
    for (uint64_t vpage : vpages) {
      auto table_it = tables_.find(pasid);
      if (table_it == tables_.end()) {
        break;
      }
      auto it = table_it->second.find(vpage);
      if (it != table_it->second.end()) {
        ReleaseAllocation(pasid, it);
      }
    }
  };
  for (uint32_t i = 0; i < request.count; ++i) {
    auto vpage = PlaceVirtual(request.pasid, pages, VirtAddr(0));
    if (!vpage.ok()) {
      rollback();
      ReplyError(message, vpage.status());
      return;
    }
    auto frame = allocator_.Allocate(pages);
    if (!frame.ok()) {
      stats().GetCounter("oom_rejections").Increment();
      rollback();
      ReplyError(message, frame.status());
      return;
    }
    uint64_t first_frame = config_.frame_base + *frame;
    for (uint64_t p = 0; p < pages; ++p) {
      memory_->ZeroFrame(first_frame + p);
    }
    Allocation allocation;
    allocation.vaddr = VirtAddr(*vpage << kPageShift);
    allocation.pages = pages;
    allocation.first_frame = first_frame;
    allocation.owner = message.src;
    allocation.owner_access = request.access;
    tables_[request.pasid].emplace(*vpage, allocation);
    bytes_allocated_[request.pasid] += pages * kPageSize;
    stats().GetCounter("allocations").Increment();
    stats().GetCounter("pages_allocated").Increment(pages);
    auto region_entries = EntriesFor(allocation, *vpage, pages, request.access);
    entries.insert(entries.end(), region_entries.begin(), region_entries.end());
    vpages.push_back(*vpage);
    frames.push_back(first_frame);
  }
  stats().GetCounter("batch_allocs").Increment();
  stats().GetCounter("batch_allocd_regions").Increment(request.count);
  TraceEvent("alloc-batch", "pasid=" + std::to_string(request.pasid.value()) +
                                " regions=" + std::to_string(request.count) +
                                " pages_each=" + std::to_string(pages));

  // One combined MapDirective programs every region; reply only once the
  // whole lease is live.
  proto::Message original = message;
  uint64_t region_bytes = pages * kPageSize;
  SendDirective(message.src, request.pasid, std::move(entries), /*unmap=*/false,
                [this, original, region_bytes, vpages = std::move(vpages),
                 frames = std::move(frames), pasid = request.pasid](Result<void> mapped) {
                  if (!mapped.ok()) {
                    for (uint64_t vpage : vpages) {
                      auto table_it = tables_.find(pasid);
                      if (table_it == tables_.end()) {
                        break;
                      }
                      auto it = table_it->second.find(vpage);
                      if (it != table_it->second.end()) {
                        ReleaseAllocation(pasid, it);
                      }
                    }
                    ReplyError(original, mapped.status());
                    return;
                  }
                  proto::MemAllocBatchResponse response;
                  response.bytes = region_bytes;
                  response.vaddrs.reserve(vpages.size());
                  for (uint64_t vpage : vpages) {
                    response.vaddrs.push_back(VirtAddr(vpage << kPageShift));
                  }
                  response.first_frames = frames;
                  Reply(original, std::move(response));
                });
}

void MemoryController::HandleFreeBatch(const proto::Message& message) {
  const auto& request = message.As<proto::MemFreeBatchRequest>();
  if (request.vaddrs.empty()) {
    ReplyError(message, InvalidArgument("empty batch free"));
    return;
  }
  auto table_it = tables_.find(request.pasid);
  if (table_it == tables_.end()) {
    ReplyError(message, NotFound("no allocations for PASID"));
    return;
  }
  // Validate every region before touching any: the batch frees as one unit.
  uint64_t pages = PagesForBytes(request.bytes);
  std::map<DeviceId, std::vector<proto::MapEntry>> per_target;
  for (const VirtAddr& vaddr : request.vaddrs) {
    auto it = table_it->second.find(vaddr.page());
    if (it == table_it->second.end() || it->second.pages != pages) {
      ReplyError(message, NotFound("no matching allocation in batch"));
      return;
    }
    if (it->second.owner != message.src) {
      stats().GetCounter("authorization_failures").Increment();
      ReplyError(message, PermissionDenied("only the owner may free an allocation"));
      return;
    }
    const Allocation& allocation = it->second;
    auto entries = EntriesFor(allocation, vaddr.page(), pages, Access::kRead);
    auto& owner_entries = per_target[allocation.owner];
    owner_entries.insert(owner_entries.end(), entries.begin(), entries.end());
    for (const auto& [grantee, access] : allocation.grants) {
      auto& grantee_entries = per_target[grantee];
      grantee_entries.insert(grantee_entries.end(), entries.begin(), entries.end());
    }
  }

  struct BatchFreeState {
    int outstanding = 0;
    proto::Message original;
  };
  auto state = std::make_shared<BatchFreeState>();
  state->original = message;
  auto finish = [this, state, pasid = request.pasid, vaddrs = request.vaddrs] {
    if (--state->outstanding > 0) {
      return;
    }
    for (const VirtAddr& vaddr : vaddrs) {
      auto table = tables_.find(pasid);
      if (table == tables_.end()) {
        break;
      }
      auto alloc_it = table->second.find(vaddr.page());
      if (alloc_it != table->second.end()) {
        ReleaseAllocation(pasid, alloc_it);
      }
    }
    Reply(state->original, proto::MemFreeBatchResponse{});
  };

  stats().GetCounter("batch_frees").Increment();
  stats().GetCounter("batch_freed_regions").Increment(request.vaddrs.size());
  state->outstanding = static_cast<int>(per_target.size());
  for (auto& [target, entries] : per_target) {
    SendDirective(target, request.pasid, std::move(entries), /*unmap=*/true,
                  [finish](Result<void>) { finish(); });
  }
}

void MemoryController::ReleaseAllocation(Pasid pasid, Table::iterator it) {
  const Allocation& allocation = it->second;
  if (foreign_frames_.erase(allocation.first_frame) > 0) {
    // An adopted range: the frames belong to a failed shard's slice, not this
    // allocator. Dropping the adoption record is the release.
    stats().GetCounter("foreign_frames_released").Increment();
  } else {
    LASTCPU_CHECK(
        allocator_.Free(allocation.first_frame - config_.frame_base, allocation.pages).ok(),
        "allocator table out of sync");
  }
  bytes_allocated_[pasid] -= allocation.pages * kPageSize;
  stats().GetCounter("frees").Increment();
  tables_[pasid].erase(it);
}

void MemoryController::HandleFree(const proto::Message& message) {
  const auto& request = message.As<proto::MemFreeRequest>();
  auto table_it = tables_.find(request.pasid);
  if (table_it == tables_.end()) {
    ReplyError(message, NotFound("no allocations for PASID"));
    return;
  }
  auto it = table_it->second.find(request.vaddr.page());
  if (it == table_it->second.end() || it->second.pages != PagesForBytes(request.bytes)) {
    ReplyError(message, NotFound("no matching allocation"));
    return;
  }
  if (it->second.owner != message.src) {
    stats().GetCounter("authorization_failures").Increment();
    ReplyError(message, PermissionDenied("only the owner may free an allocation"));
    return;
  }

  // Unmap from the owner and every grantee, then release the frames.
  Allocation allocation = it->second;
  uint64_t vpage = it->first;
  struct FreeState {
    int outstanding = 0;
    proto::Message original;
  };
  auto state = std::make_shared<FreeState>();
  state->original = message;

  auto finish = [this, state, pasid = request.pasid, vpage] {
    if (--state->outstanding > 0) {
      return;
    }
    auto table = tables_.find(pasid);
    if (table != tables_.end()) {
      auto alloc_it = table->second.find(vpage);
      if (alloc_it != table->second.end()) {
        ReleaseAllocation(pasid, alloc_it);
      }
    }
    Reply(state->original, proto::MemFreeResponse{});
  };

  std::vector<DeviceId> targets{allocation.owner};
  for (const auto& [grantee, access] : allocation.grants) {
    targets.push_back(grantee);
  }
  state->outstanding = static_cast<int>(targets.size());
  for (DeviceId target : targets) {
    auto entries = EntriesFor(allocation, vpage, allocation.pages, Access::kNone);
    for (auto& entry : entries) {
      entry.access = Access::kRead;  // access ignored on unmap; keep valid bits
    }
    SendDirective(target, request.pasid, std::move(entries), /*unmap=*/true,
                  [finish](Result<void>) { finish(); });
  }
}

void MemoryController::HandleGrant(const proto::Message& message) {
  const auto& request = message.As<proto::GrantRequest>();
  Allocation* allocation = FindCovering(request.pasid, request.vaddr, request.bytes);
  if (allocation == nullptr) {
    ReplyError(message, NotFound("grant range is not an allocated region"));
    return;
  }
  // Authorization (Sec. 3): only the owner of a region may grant it.
  if (allocation->owner != message.src) {
    stats().GetCounter("authorization_failures").Increment();
    ReplyError(message, PermissionDenied("only the owner may grant a region"));
    return;
  }
  if (request.grantee == message.src) {
    ReplyError(message, InvalidArgument("cannot grant a region to its owner"));
    return;
  }
  // The grantee may not receive more rights than the owner holds.
  if (!AccessCovers(allocation->owner_access, request.access)) {
    stats().GetCounter("authorization_failures").Increment();
    ReplyError(message, PermissionDenied("grant requests more access than the owner holds"));
    return;
  }

  uint64_t pages = PagesForBytes(request.bytes);
  auto entries = EntriesFor(*allocation, request.vaddr.page(), pages, request.access);
  allocation->grants.emplace_back(request.grantee, request.access);
  stats().GetCounter("grants").Increment();
  TraceEvent("grant", "to=" + std::to_string(request.grantee.value()) +
                          " pages=" + std::to_string(pages));

  proto::Message original = message;
  SendDirective(request.grantee, request.pasid, std::move(entries), /*unmap=*/false,
                [this, original](Result<void> mapped) {
                  if (!mapped.ok()) {
                    ReplyError(original, mapped.status());
                    return;
                  }
                  Reply(original, proto::GrantResponse{});
                });
}

void MemoryController::HandleRevoke(const proto::Message& message) {
  const auto& request = message.As<proto::RevokeRequest>();
  Allocation* allocation = FindCovering(request.pasid, request.vaddr, request.bytes);
  if (allocation == nullptr) {
    ReplyError(message, NotFound("revoke range is not an allocated region"));
    return;
  }
  if (allocation->owner != message.src) {
    stats().GetCounter("authorization_failures").Increment();
    ReplyError(message, PermissionDenied("only the owner may revoke a grant"));
    return;
  }
  auto grant_it =
      std::find_if(allocation->grants.begin(), allocation->grants.end(),
                   [&](const auto& grant) { return grant.first == request.grantee; });
  if (grant_it == allocation->grants.end()) {
    ReplyError(message, NotFound("no such grant"));
    return;
  }
  allocation->grants.erase(grant_it);
  stats().GetCounter("revokes").Increment();

  uint64_t pages = PagesForBytes(request.bytes);
  auto entries = EntriesFor(*allocation, request.vaddr.page(), pages, Access::kRead);
  proto::Message original = message;
  SendDirective(request.grantee, request.pasid, std::move(entries), /*unmap=*/true,
                [this, original](Result<void> unmapped) {
                  if (!unmapped.ok()) {
                    ReplyError(original, unmapped.status());
                    return;
                  }
                  Reply(original, proto::RevokeResponse{});
                });
}

void MemoryController::OnTeardown(Pasid pasid) {
  auto table_it = tables_.find(pasid);
  if (table_it == tables_.end()) {
    return;
  }
  // Direct unmaps for every allocation and grant, then release the frames.
  for (auto& [vpage, allocation] : table_it->second) {
    std::vector<DeviceId> targets{allocation.owner};
    for (const auto& [grantee, access] : allocation.grants) {
      targets.push_back(grantee);
    }
    for (DeviceId target : targets) {
      auto entries = EntriesFor(allocation, vpage, allocation.pages, Access::kRead);
      SendDirective(target, pasid, std::move(entries), /*unmap=*/true, [](Result<void>) {});
    }
    if (foreign_frames_.erase(allocation.first_frame) > 0) {
      stats().GetCounter("foreign_frames_released").Increment();
    } else {
      LASTCPU_CHECK(
          allocator_.Free(allocation.first_frame - config_.frame_base, allocation.pages).ok(),
          "allocator table out of sync during teardown");
    }
  }
  stats().GetCounter("teardowns").Increment();
  bytes_allocated_.erase(pasid);
  next_vpage_.erase(pasid);
  tables_.erase(table_it);
}

bool MemoryController::AdoptForeignFrames(uint64_t first_frame, uint64_t pages) {
  // Overlap check against every adopted range: two clients re-asserting
  // leases over the same frames would otherwise double-own them.
  auto next = foreign_frames_.lower_bound(first_frame);
  if (next != foreign_frames_.end() && next->first < first_frame + pages) {
    return false;
  }
  if (next != foreign_frames_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second > first_frame) {
      return false;
    }
  }
  foreign_frames_.emplace(first_frame, pages);
  stats().GetCounter("foreign_frames_adopted").Increment();
  return true;
}

void MemoryController::HandleLeaseReassert(const proto::Message& message) {
  // A client re-establishing its allocations after this shard (or the shard
  // it took over for) lost its tables. Each lease names the exact virtual
  // placement and physical frames the client's IOMMU already maps; accepting
  // one re-admits the region without reprogramming anything. Rejections mean
  // the region is gone (frames already re-used or claimed by another lease)
  // and the client must treat the allocation as lost.
  const auto& request = message.As<proto::LeaseReassertRequest>();
  uint32_t accepted = 0;
  uint32_t rejected = 0;
  for (const auto& lease : request.leases) {
    if (!lease.pasid.valid() || lease.bytes == 0) {
      ++rejected;
      continue;
    }
    uint64_t pages = PagesForBytes(lease.bytes);
    uint64_t vpage = lease.vaddr.page();
    Table& table = tables_[lease.pasid];
    if (Overlaps(table, vpage, pages)) {
      // Idempotent if it is exactly this client's own record (a retried
      // re-assert); otherwise the placement is taken and the lease is dead.
      auto it = table.find(vpage);
      if (it != table.end() && it->second.pages == pages &&
          it->second.first_frame == lease.first_frame && it->second.owner == message.src) {
        ++accepted;
      } else {
        stats().GetCounter("lease_reasserts_rejected").Increment();
        ++rejected;
      }
      continue;
    }
    uint64_t own_begin = config_.frame_base;
    uint64_t own_end = config_.frame_base + allocator_.total_frames();
    bool frames_claimed;
    if (lease.first_frame >= own_begin && lease.first_frame + pages <= own_end) {
      frames_claimed = allocator_.Reserve(lease.first_frame - config_.frame_base, pages).ok();
    } else {
      frames_claimed = AdoptForeignFrames(lease.first_frame, pages);
    }
    if (!frames_claimed) {
      stats().GetCounter("lease_reasserts_rejected").Increment();
      ++rejected;
      continue;
    }
    Allocation allocation;
    allocation.vaddr = lease.vaddr;
    allocation.pages = pages;
    allocation.first_frame = lease.first_frame;
    allocation.owner = message.src;
    allocation.owner_access = lease.access;
    for (const auto& grant : lease.grants) {
      allocation.grants.emplace_back(grant.grantee, grant.access);
    }
    table.emplace(vpage, allocation);
    bytes_allocated_[lease.pasid] += pages * kPageSize;
    // Keep the bump pointer clear of re-admitted regions so post-recovery
    // allocations cannot race into the same VA range. Adopted leases from a
    // dead shard's slab live outside [va_base, va_limit) and must not drag
    // the pointer past this shard's own slab.
    bool in_own_slab = lease.vaddr.raw >= config_.va_base &&
                       (config_.va_limit == 0 || lease.vaddr.raw < config_.va_limit);
    if (in_own_slab) {
      auto [bump, inserted] = next_vpage_.try_emplace(
          lease.pasid, (config_.va_base + config_.va_bump_base) >> kPageShift);
      (void)inserted;
      bump->second = std::max(bump->second, vpage + pages);
    }
    stats().GetCounter("lease_reasserts_accepted").Increment();
    ++accepted;
  }
  if (!request.leases.empty()) {
    TraceEvent("lease-reassert", "from=" + std::to_string(message.src.value()) +
                                     " accepted=" + std::to_string(accepted) +
                                     " rejected=" + std::to_string(rejected));
  }
  Reply(message, proto::LeaseReassertResponse{accepted, rejected, epoch_});
}

void MemoryController::OnPeerFailed(DeviceId device) {
  // A device died: revoke its grants everywhere. Its *owned* allocations stay
  // until the application is torn down (consumers may still hold grants and
  // the data may be recoverable), matching Sec. 4's consumer-driven recovery.
  for (auto& [pasid, table] : tables_) {
    for (auto& [vpage, allocation] : table) {
      auto removed = std::remove_if(allocation.grants.begin(), allocation.grants.end(),
                                    [&](const auto& grant) { return grant.first == device; });
      allocation.grants.erase(removed, allocation.grants.end());
    }
  }
}

uint64_t MemoryController::AllocationsOwnedBy(DeviceId device) const {
  uint64_t count = 0;
  for (const auto& [pasid, table] : tables_) {
    for (const auto& [vpage, allocation] : table) {
      if (allocation.owner == device) {
        ++count;
      }
    }
  }
  return count;
}

bool MemoryController::HasAllocationAt(Pasid pasid, VirtAddr vaddr) const {
  auto table = tables_.find(pasid);
  if (table == tables_.end()) {
    return false;
  }
  auto entry = table->second.find(vaddr.raw / kPageSize);
  return entry != table->second.end() && entry->second.vaddr == vaddr;
}

uint64_t MemoryController::GrantsHeldBy(DeviceId device) const {
  uint64_t count = 0;
  for (const auto& [pasid, table] : tables_) {
    for (const auto& [vpage, allocation] : table) {
      for (const auto& [grantee, access] : allocation.grants) {
        if (grantee == device) {
          ++count;
        }
      }
    }
  }
  return count;
}

void MemoryController::OnPeerPermanentlyFailed(DeviceId device) {
  // The supervisor gave up on this device: nobody will ever free its
  // allocations or use its grants, so the hopeful OnPeerFailed posture
  // (keep owned regions for recovery) would leak them forever. Reclaim
  // everything: drop grants it held, unmap its owned regions from surviving
  // grantees, and release the frames.
  uint64_t grants_dropped = 0;
  std::vector<std::pair<Pasid, uint64_t>> owned;
  for (auto& [pasid, table] : tables_) {
    for (auto& [vpage, allocation] : table) {
      auto removed = std::remove_if(allocation.grants.begin(), allocation.grants.end(),
                                    [&](const auto& grant) { return grant.first == device; });
      grants_dropped += static_cast<uint64_t>(allocation.grants.end() - removed);
      allocation.grants.erase(removed, allocation.grants.end());
      if (allocation.owner == device) {
        owned.emplace_back(pasid, vpage);
      }
    }
  }
  for (const auto& [pasid, vpage] : owned) {
    auto table_it = tables_.find(pasid);
    if (table_it == tables_.end()) {
      continue;
    }
    auto it = table_it->second.find(vpage);
    if (it == table_it->second.end()) {
      continue;
    }
    Allocation& allocation = it->second;
    // The dead device's own IOMMU was already scrubbed by the bus; surviving
    // grantees still hold live mappings into frames about to be reused.
    for (const auto& [grantee, access] : allocation.grants) {
      auto entries = EntriesFor(allocation, vpage, allocation.pages, Access::kRead);
      SendDirective(grantee, pasid, std::move(entries), /*unmap=*/true, [](Result<void>) {});
    }
    stats().GetCounter("stranded_grants_reclaimed").Increment(allocation.grants.size());
    ReleaseAllocation(pasid, it);
    stats().GetCounter("permanent_reclaims").Increment();
  }
  if (grants_dropped > 0 || !owned.empty()) {
    TraceEvent("permanent-reclaim", "device=" + std::to_string(device.value()) +
                                        " allocations=" + std::to_string(owned.size()) +
                                        " grants=" + std::to_string(grants_dropped));
  }
}

}  // namespace lastcpu::memdev
